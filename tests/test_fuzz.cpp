// Randomized consistency fuzzing: many seeds, random configuration per
// seed, cross-checking ParAPSP (and one randomly chosen other algorithm)
// against the sampled-oracle verifier. Catches interaction bugs the
// hand-written cases miss.
#include <gtest/gtest.h>

#include "apsp/verify.hpp"
#include "test_helpers.hpp"

namespace {

using namespace parapsp;

graph::Graph<std::uint32_t> random_config_graph(std::uint64_t seed) {
  util::Xoshiro256 rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const auto family = rng.bounded(4);
  const auto n = static_cast<VertexId>(40 + rng.bounded(160));
  graph::Graph<std::uint32_t> g;
  switch (family) {
    case 0:
      g = graph::erdos_renyi_gnm<std::uint32_t>(
          n, std::min<EdgeId>(static_cast<EdgeId>(n) * (n - 1) / 2,
                              static_cast<EdgeId>(n) * (1 + rng.bounded(5))),
          rng(), rng.bounded(2) ? graph::Directedness::kDirected
                                : graph::Directedness::kUndirected);
      break;
    case 1:
      g = graph::barabasi_albert<std::uint32_t>(
          n, static_cast<VertexId>(1 + rng.bounded(5)), rng());
      break;
    case 2: {
      std::uint32_t scale = 1;
      while ((VertexId{1} << scale) < n) ++scale;
      g = graph::rmat<std::uint32_t>(scale, static_cast<EdgeId>(n) * 4, rng());
      break;
    }
    default: {
      const auto k = static_cast<VertexId>(1 + rng.bounded(3));
      if (2 * k < n) {
        g = graph::watts_strogatz<std::uint32_t>(n, k, 0.3, rng());
      } else {
        g = graph::cycle_graph<std::uint32_t>(n);
      }
      break;
    }
  }
  if (rng.bounded(2)) {
    g = graph::randomize_weights<std::uint32_t>(g, 1, 1 + static_cast<std::uint32_t>(rng.bounded(30)),
                                                rng());
  }
  if (rng.bounded(2)) {
    g = graph::relabel(g, graph::random_permutation(g.num_vertices(), rng()));
  }
  return g;
}

class Fuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Fuzz, ParApspVerifies) {
  const auto g = random_config_graph(GetParam());
  const auto D = apsp::par_apsp(g).distances;
  const auto report = apsp::verify_distances(g, D, /*sample_rows=*/6, GetParam());
  EXPECT_TRUE(report.ok()) << g.summary() << ": " << report.to_string();
}

TEST_P(Fuzz, RandomOtherAlgorithmAgrees) {
  const auto seed = GetParam();
  const auto g = random_config_graph(seed);
  util::Xoshiro256 rng(seed ^ 0xfeedULL);
  const core::Algorithm algos[] = {
      core::Algorithm::kFloydWarshallBlocked, core::Algorithm::kRepeatedDijkstraPar,
      core::Algorithm::kPengBasic,            core::Algorithm::kPengOptimized,
      core::Algorithm::kPengAdaptive,         core::Algorithm::kParAlg1,
      core::Algorithm::kParAlg2,              core::Algorithm::kCustom,
  };
  core::SolverOptions opts;
  opts.algorithm = algos[rng.bounded(std::size(algos))];
  opts.ordering = static_cast<order::OrderingKind>(rng.bounded(7));
  opts.schedule = static_cast<apsp::Schedule>(rng.bounded(3));
  opts.threads = static_cast<int>(1 + rng.bounded(4));

  const auto got = core::solve(g, opts).distances;
  const auto want = apsp::par_apsp(g).distances;
  VertexId u = 0, v = 0;
  const bool differs = got.first_difference(want, u, v);
  EXPECT_FALSE(differs) << g.summary() << " algo=" << core::to_string(opts.algorithm)
                        << " differs at (" << u << "," << v << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, Fuzz, ::testing::Range<std::uint64_t>(1, 49),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace

namespace {

// Metamorphic property: relabeling the graph permutes the distance matrix.
// Exercises the full stack (builder, ordering, kernel, parallel sweep) under
// an arbitrary vertex renaming.
class RelabelInvariance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RelabelInvariance, DistancesCommuteWithRelabeling) {
  const auto seed = GetParam();
  const auto g = random_config_graph(seed + 1000);
  const auto perm = graph::random_permutation(g.num_vertices(), seed ^ 0xabc);
  const auto h = graph::relabel(g, perm);

  const auto Dg = apsp::par_apsp(g).distances;
  const auto Dh = apsp::par_apsp(h).distances;
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(Dg.at(u, v), Dh.at(perm[u], perm[v]))
          << g.summary() << " at " << u << "," << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelabelInvariance,
                         ::testing::Range<std::uint64_t>(1, 9),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

}  // namespace
