// Tests for APSP path reconstruction (the successor matrix through the
// row-reuse kernel).
#include <gtest/gtest.h>

#include "apsp/paths.hpp"
#include "test_helpers.hpp"

namespace {

using namespace parapsp;

/// Validates a successor matrix against the graph and the exact distances:
/// every reconstructed path must exist edge-by-edge and cost exactly D[s][v].
template <typename W>
void validate_paths(const graph::Graph<W>& g, const apsp::DistanceMatrix<W>& D,
                    const apsp::SuccessorMatrix& next) {
  const VertexId n = g.num_vertices();
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId v = 0; v < n; ++v) {
      if (s == v) {
        ASSERT_EQ(next.next(s, v), kInvalidVertex);
        continue;
      }
      if (is_infinite(D.at(s, v))) {
        ASSERT_EQ(next.next(s, v), kInvalidVertex) << s << "->" << v;
        continue;
      }
      const auto path = next.path(s, v);
      ASSERT_GE(path.size(), 2u) << s << "->" << v;
      ASSERT_EQ(path.front(), s);
      ASSERT_EQ(path.back(), v);
      W cost{0};
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const auto nb = g.neighbors(path[i]);
        const auto ws = g.weights(path[i]);
        W best = infinity<W>();
        for (std::size_t e = 0; e < nb.size(); ++e) {
          if (nb[e] == path[i + 1]) best = std::min(best, ws[e]);
        }
        ASSERT_FALSE(is_infinite(best))
            << "path " << s << "->" << v << " uses non-edge " << path[i] << "->"
            << path[i + 1];
        cost = dist_add(cost, best);
      }
      ASSERT_EQ(cost, D.at(s, v)) << "path cost mismatch " << s << "->" << v;
    }
  }
}

class PathsCorrectness
    : public ::testing::TestWithParam<parapsp::testing::GraphCase> {};

TEST_P(PathsCorrectness, ParallelPathsAreShortest) {
  const auto g = parapsp::testing::make_graph(GetParam());
  const auto result = apsp::par_apsp_paths(g);
  parapsp::testing::expect_same_distances(result.distances, apsp::floyd_warshall(g),
                                          "paths distances");
  validate_paths(g, result.distances, result.successors);
}

TEST_P(PathsCorrectness, SequentialPathsAreShortest) {
  const auto g = parapsp::testing::make_graph(GetParam());
  const auto result = apsp::peng_optimized_paths(g);
  validate_paths(g, result.distances, result.successors);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PathsCorrectness,
    ::testing::Values(
        parapsp::testing::GraphCase{"ba", parapsp::testing::GraphCase::Family::kBA, 80,
                                    3, graph::Directedness::kUndirected, false, 81},
        parapsp::testing::GraphCase{"er_weighted",
                                    parapsp::testing::GraphCase::Family::kER, 70, 220,
                                    graph::Directedness::kUndirected, true, 82},
        parapsp::testing::GraphCase{"rmat_directed",
                                    parapsp::testing::GraphCase::Family::kRMAT, 64, 260,
                                    graph::Directedness::kDirected, false, 83},
        parapsp::testing::GraphCase{"er_disconnected",
                                    parapsp::testing::GraphCase::Family::kER, 90, 40,
                                    graph::Directedness::kUndirected, false, 84}),
    parapsp::testing::case_name);

TEST(Paths, HandComputedDiamond) {
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kDirected);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(0, 2, 5);
  const auto result = apsp::par_apsp_paths(b.build());
  EXPECT_EQ(result.successors.path(0, 2), (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(result.distances.at(0, 2), 2u);
}

TEST(Paths, SelfPathIsSingleton) {
  const auto g = graph::path_graph<std::uint32_t>(3);
  const auto result = apsp::par_apsp_paths(g);
  EXPECT_EQ(result.successors.path(1, 1), (std::vector<VertexId>{1}));
}

TEST(Paths, UnreachableIsEmpty) {
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kUndirected, 4);
  b.add_edge(0, 1);
  const auto result = apsp::par_apsp_paths(b.build());
  EXPECT_TRUE(result.successors.path(0, 3).empty());
}

TEST(Paths, ThreadInvariant) {
  const auto g = graph::barabasi_albert<std::uint32_t>(150, 3, 85);
  const auto want = apsp::floyd_warshall(g);
  for (const int t : {1, 2, 4}) {
    util::ThreadScope scope(t);
    const auto result = apsp::par_apsp_paths(g);
    parapsp::testing::expect_same_distances(result.distances, want,
                                            "t=" + std::to_string(t));
    validate_paths(g, result.distances, result.successors);
  }
}

}  // namespace
