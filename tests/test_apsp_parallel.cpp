// Parallel-specific properties: thread-count invariance, determinism across
// repeated runs, the flag publication protocol under concurrency, and the
// phase-timing contract of the result type.
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace {

using namespace parapsp;

class ThreadInvariance : public ::testing::TestWithParam<int> {};

TEST_P(ThreadInvariance, ParApspMatchesSequentialAtAnyThreadCount) {
  util::ThreadScope scope(GetParam());
  const auto g = graph::barabasi_albert<std::uint32_t>(300, 3, 41);
  const auto want = apsp::peng_basic(g).distances;
  const auto got = apsp::par_apsp(g).distances;
  parapsp::testing::expect_same_distances(got, want,
                                          "t=" + std::to_string(GetParam()));
}

TEST_P(ThreadInvariance, ParAlg1MatchesSequential) {
  util::ThreadScope scope(GetParam());
  const auto g = graph::rmat<std::uint32_t>(8, 900, 42);
  const auto want = apsp::peng_basic(g).distances;
  parapsp::testing::expect_same_distances(apsp::par_alg1(g).distances, want, "paralg1");
}

TEST_P(ThreadInvariance, ParAlg2EverySchedule) {
  util::ThreadScope scope(GetParam());
  const auto g = graph::erdos_renyi_gnm<std::uint32_t>(200, 800, 43);
  const auto want = apsp::peng_basic(g).distances;
  for (const auto sched : {apsp::Schedule::kBlock, apsp::Schedule::kStaticCyclic,
                           apsp::Schedule::kDynamicCyclic}) {
    parapsp::testing::expect_same_distances(apsp::par_alg2(g, sched).distances, want,
                                            apsp::to_string(sched));
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadInvariance, ::testing::Values(1, 2, 3, 4, 7, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(ParallelDeterminism, RepeatedRunsIdentical) {
  // The distance matrix is the exact APSP solution, so any two runs — any
  // interleaving — must agree bit-for-bit.
  util::ThreadScope scope(4);
  const auto g = graph::barabasi_albert<std::uint32_t>(250, 4, 44);
  const auto first = apsp::par_apsp(g).distances;
  for (int run = 0; run < 5; ++run) {
    const auto again = apsp::par_apsp(g).distances;
    ASSERT_EQ(again, first) << "run " << run;
  }
}

TEST(ParallelProtocol, AllFlagsPublishedAfterRun) {
  util::ThreadScope scope(4);
  const auto g = graph::erdos_renyi_gnm<std::uint32_t>(150, 500, 45);
  apsp::DistanceMatrix<std::uint32_t> D(g.num_vertices());
  apsp::FlagArray flags(g.num_vertices());
  const auto order = order::multilists_order(g.degrees());
  (void)apsp::sweep_parallel(g, order, D, flags);
  EXPECT_EQ(flags.count_complete(), g.num_vertices());
}

TEST(ParallelProtocol, KernelStatsAggregateAcrossThreads) {
  util::ThreadScope scope(4);
  const auto g = graph::barabasi_albert<std::uint32_t>(200, 3, 46);

  // Sequential identity-order stats as the baseline for dequeues: every
  // source dequeues at least once, so the total must be >= n in both modes.
  const auto seq = apsp::peng_basic(g);
  EXPECT_GE(seq.kernel.dequeues, static_cast<std::uint64_t>(g.num_vertices()));

  const auto par = apsp::par_apsp(g);
  EXPECT_GE(par.kernel.dequeues, static_cast<std::uint64_t>(g.num_vertices()));
  EXPECT_GT(par.kernel.edge_relaxations, 0u);
}

TEST(ParallelTiming, PhaseBreakdownIsPopulated) {
  const auto g = graph::barabasi_albert<std::uint32_t>(400, 3, 47);
  const auto r1 = apsp::par_alg2(g);
  EXPECT_GT(r1.ordering_seconds, 0.0) << "selection sort cannot take zero time";
  EXPECT_GT(r1.sweep_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r1.total_seconds(), r1.ordering_seconds + r1.sweep_seconds);

  const auto r2 = apsp::par_alg1(g);
  EXPECT_EQ(r2.ordering_seconds, 0.0) << "paralg1 has no ordering phase";
}

TEST(ParallelOrderingQuality, OptimizedOrderReducesSweepWork) {
  // The modified Dijkstra does measurably less edge work under the
  // descending-degree order than under identity — the paper's core claim,
  // checked as an algorithmic invariant rather than a wall-clock claim.
  const auto g = graph::barabasi_albert<std::uint32_t>(600, 4, 48);
  const auto basic = apsp::peng_basic(g);
  const auto optimized = apsp::peng_optimized(g);
  EXPECT_LT(optimized.kernel.edge_relaxations, basic.kernel.edge_relaxations);
}

TEST(ParallelOrderingQuality, ApproximateOrderDoesNoWorseThanIdentity) {
  const auto g = graph::barabasi_albert<std::uint32_t>(600, 4, 49);
  const auto identity = apsp::par_apsp_with(g, order::OrderingKind::kIdentity);
  const auto approx = apsp::par_apsp_with(g, order::OrderingKind::kParBuckets);
  EXPECT_LE(approx.kernel.edge_relaxations, identity.kernel.edge_relaxations);
}

}  // namespace
