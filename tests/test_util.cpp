// Unit tests for src/util: rng, stats, table, cli, powerlaw, timer, types.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "util/cli.hpp"
#include "util/parallel.hpp"
#include "util/powerlaw.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "util/types.hpp"

namespace {

using namespace parapsp;
using namespace parapsp::util;

// ---------- types.hpp ----------

TEST(Types, InfinityIntegral) {
  EXPECT_EQ(infinity<std::uint32_t>(), std::numeric_limits<std::uint32_t>::max());
  EXPECT_TRUE(is_infinite(infinity<std::uint32_t>()));
  EXPECT_FALSE(is_infinite(std::uint32_t{0}));
}

TEST(Types, InfinityFloating) {
  EXPECT_TRUE(std::isinf(infinity<double>()));
  EXPECT_TRUE(is_infinite(infinity<float>()));
  EXPECT_FALSE(is_infinite(1e30f));
}

TEST(Types, DistAddSaturates) {
  const auto inf = infinity<std::uint32_t>();
  EXPECT_EQ(dist_add(inf, std::uint32_t{5}), inf);
  EXPECT_EQ(dist_add(std::uint32_t{5}, inf), inf);
  EXPECT_EQ(dist_add(inf, inf), inf);
  // Near-overflow clamps instead of wrapping.
  EXPECT_EQ(dist_add(inf - 1, std::uint32_t{5}), inf);
  EXPECT_EQ(dist_add(std::uint32_t{3}, std::uint32_t{4}), 7u);
}

TEST(Types, DistAddFloatingUsesIEEE) {
  EXPECT_TRUE(std::isinf(dist_add(infinity<double>(), 1.0)));
  EXPECT_DOUBLE_EQ(dist_add(1.5, 2.5), 4.0);
}

// ---------- rng.hpp ----------

TEST(Rng, SplitMixDeterministic) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, XoshiroDeterministicAndSeedSensitive) {
  Xoshiro256 a(1), b(1), c(2);
  bool all_equal_c = true;
  for (int i = 0; i < 100; ++i) {
    const auto va = a(), vb = b(), vc = c();
    EXPECT_EQ(va, vb);
    all_equal_c &= (va == vc);
  }
  EXPECT_FALSE(all_equal_c);
}

TEST(Rng, BoundedStaysInBound) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
}

TEST(Rng, BoundedCoversRange) {
  Xoshiro256 rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.bounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, SplitProducesIndependentStream) {
  Xoshiro256 a(9);
  auto b = a.split();
  bool same = true;
  for (int i = 0; i < 20; ++i) same &= (a() == b());
  EXPECT_FALSE(same);
}

// ---------- stats.hpp ----------

TEST(Stats, EmptyDefaults) {
  RunStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.median(), 0.0);
}

TEST(Stats, KnownValues) {
  RunStats s;
  for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 1e-3);  // sample stddev
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.median(), 4.5);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Stats, MedianOddCount) {
  RunStats s;
  for (const double v : {3.0, 1.0, 2.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(Stats, SingleSampleStddevZero) {
  RunStats s;
  s.add(5.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(Stats, TimeRepeatedCollectsSamples) {
  int calls = 0;
  const auto stats = time_repeated([&] { ++calls; }, 5);
  EXPECT_EQ(calls, 5);
  EXPECT_EQ(stats.count(), 5u);
  EXPECT_GE(stats.min(), 0.0);
}

// ---------- table.hpp ----------

TEST(Table, TextAndCsv) {
  Table t({"a", "bb", "ccc"});
  t.add(1, 2.5, "x");
  t.add(10, 0.125, "yy");
  const auto text = t.to_text();
  EXPECT_NE(text.find("ccc"), std::string::npos);
  EXPECT_NE(text.find("yy"), std::string::npos);
  const auto csv = t.to_csv();
  EXPECT_NE(csv.find("a,bb,ccc\n"), std::string::npos);
  EXPECT_NE(csv.find("1,2.5,x\n"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, FixedFormatting) {
  EXPECT_EQ(fixed(1.23456, 2), "1.23");
  EXPECT_EQ(fixed(2.0, 0), "2");
}

// ---------- cli.hpp ----------

TEST(Cli, ParsesOptionsAndPositionals) {
  // `--opt value` consumes the next token, so bare boolean flags must come
  // last, use `--flag=true`, or precede another option.
  const char* argv[] = {"prog", "--n", "100", "pos1", "--ratio=0.5", "pos2", "--flag"};
  Args args(7, argv);
  EXPECT_EQ(args.get_int("n", 0), 100);
  EXPECT_TRUE(args.get_flag("flag"));
  EXPECT_DOUBLE_EQ(args.get_double("ratio", 0.0), 0.5);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "pos1");
  EXPECT_EQ(args.positional()[1], "pos2");
  EXPECT_EQ(args.program(), "prog");
}

TEST(Cli, FlagFollowedByOption) {
  const char* argv[] = {"prog", "--verbose", "--n", "3"};
  Args args(4, argv);
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_EQ(args.get_int("n", 0), 3);
}

TEST(Cli, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Args args(1, argv);
  EXPECT_EQ(args.get_int("missing", 7), 7);
  EXPECT_EQ(args.get("missing", "d"), "d");
  EXPECT_FALSE(args.get_flag("missing"));
  EXPECT_TRUE(args.get_flag("missing", true));
}

TEST(Cli, LastOccurrenceWins) {
  const char* argv[] = {"prog", "--n", "1", "--n", "2"};
  Args args(5, argv);
  EXPECT_EQ(args.get_int("n", 0), 2);
}

TEST(Cli, MalformedNumberThrows) {
  const char* argv[] = {"prog", "--n", "abc"};
  Args args(3, argv);
  EXPECT_THROW(args.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW(args.get_double("n", 0.0), std::invalid_argument);
}

TEST(Cli, BooleanValueForms) {
  const char* argv[] = {"prog", "--a", "true", "--b", "off", "--c", "1"};
  Args args(7, argv);
  EXPECT_TRUE(args.get_flag("a"));
  EXPECT_FALSE(args.get_flag("b"));
  EXPECT_TRUE(args.get_flag("c"));
}

// ---------- powerlaw.hpp ----------

TEST(PowerLaw, RecoversKnownExponent) {
  // Sample from a discrete power law with alpha=2.5 via inverse transform on
  // the continuous approximation, then check the MLE lands near 2.5.
  Xoshiro256 rng(123);
  std::vector<std::uint64_t> samples;
  const double alpha = 2.5, xmin = 2.0;
  for (int i = 0; i < 200000; ++i) {
    // Clauset-Shalizi-Newman App. D recipe for discrete power-law samples:
    // continuous Pareto at (xmin - 1/2), then round to the nearest integer.
    const double u = rng.uniform();
    const double x = (xmin - 0.5) * std::pow(1.0 - u, -1.0 / (alpha - 1.0)) + 0.5;
    samples.push_back(static_cast<std::uint64_t>(x));
  }
  const auto fit = fit_power_law(samples, xmin);
  EXPECT_NEAR(fit.alpha, alpha, 0.15);
  EXPECT_GT(fit.n, 100000u);
}

TEST(PowerLaw, IgnoresBelowCutoffAndZeros) {
  const std::vector<std::uint64_t> samples{0, 0, 1, 1, 5, 6, 7};
  const auto fit = fit_power_law(samples, 5.0);
  EXPECT_EQ(fit.n, 3u);
}

TEST(PowerLaw, FrequencyHistogram) {
  const std::vector<std::uint64_t> samples{1, 1, 2, 5};
  const auto hist = frequency_histogram(samples);
  ASSERT_EQ(hist.size(), 6u);
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(hist[3], 0u);
  EXPECT_EQ(hist[5], 1u);
}

// ---------- timer.hpp ----------

TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
}

TEST(Timer, PhaseAccumulates) {
  PhaseTimer p;
  p.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  p.stop();
  const double first = p.seconds();
  EXPECT_GT(first, 0.0);
  p.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  p.stop();
  EXPECT_GT(p.seconds(), first);
  p.reset();
  EXPECT_EQ(p.seconds(), 0.0);
}

TEST(Timer, FormatDuration) {
  EXPECT_EQ(format_duration(1.5), "1.500 s");
  EXPECT_EQ(format_duration(0.0025), "2.500 ms");
  EXPECT_NE(format_duration(2e-6).find("us"), std::string::npos);
  EXPECT_NE(format_duration(5e-9).find("ns"), std::string::npos);
}

// ---------- parallel.hpp ----------

TEST(Parallel, ThreadScopeRestores) {
  const int before = max_threads();
  {
    ThreadScope scope(2);
    EXPECT_EQ(max_threads(), 2);
  }
  EXPECT_EQ(max_threads(), before);
}

TEST(Parallel, ThreadSweepShape) {
  EXPECT_EQ(thread_sweep(1), (std::vector<int>{1}));
  EXPECT_EQ(thread_sweep(16), (std::vector<int>{1, 2, 4, 8, 16}));
  EXPECT_EQ(thread_sweep(12), (std::vector<int>{1, 2, 4, 8, 12}));
}

}  // namespace
