// Tests for the SSSP substrate: Dijkstra, Bellman-Ford/SPFA, BFS.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "sssp/bellman_ford.hpp"
#include "sssp/bfs.hpp"
#include "sssp/dijkstra.hpp"

namespace {

using namespace parapsp;
using namespace parapsp::sssp;
using graph::Directedness;

TEST(Dijkstra, HandComputedExample) {
  // Classic diamond: 0->1 (1), 0->2 (4), 1->2 (2), 1->3 (6), 2->3 (3).
  graph::GraphBuilder<std::uint32_t> b(Directedness::kDirected);
  b.add_edge(0, 1, 1);
  b.add_edge(0, 2, 4);
  b.add_edge(1, 2, 2);
  b.add_edge(1, 3, 6);
  b.add_edge(2, 3, 3);
  const auto dist = dijkstra(b.build(), 0);
  EXPECT_EQ(dist, (std::vector<std::uint32_t>{0, 1, 3, 6}));
}

TEST(Dijkstra, UnreachableIsInfinity) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kDirected, 3);
  b.add_edge(0, 1, 2);
  const auto dist = dijkstra(b.build(), 0);
  EXPECT_EQ(dist[2], infinity<std::uint32_t>());
}

TEST(Dijkstra, SourceOutOfRangeThrows) {
  const auto g = graph::path_graph<std::uint32_t>(3);
  EXPECT_THROW((void)dijkstra(g, 5), std::out_of_range);
}

TEST(Dijkstra, ZeroWeightEdges) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kDirected);
  b.add_edge(0, 1, 0);
  b.add_edge(1, 2, 0);
  b.add_edge(0, 2, 5);
  const auto dist = dijkstra(b.build(), 0);
  EXPECT_EQ(dist[2], 0u);
}

TEST(Dijkstra, SelfLoopNeverShortens) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kDirected);
  b.add_edge(0, 0, 1);
  b.add_edge(0, 1, 3);
  const auto dist = dijkstra(b.build(), 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], 3u);
}

TEST(Dijkstra, DoubleWeights) {
  graph::GraphBuilder<double> b(Directedness::kUndirected);
  b.add_edge(0, 1, 0.5);
  b.add_edge(1, 2, 0.25);
  b.add_edge(0, 2, 1.0);
  const auto dist = dijkstra(b.build(), 0);
  EXPECT_DOUBLE_EQ(dist[2], 0.75);
}

TEST(DijkstraTree, PathReconstruction) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kDirected);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(0, 2, 5);
  const auto tree = dijkstra_tree(b.build(), 0);
  EXPECT_EQ(tree.path_to(2), (std::vector<VertexId>{0, 1, 2}));
  EXPECT_EQ(tree.path_to(0), (std::vector<VertexId>{0}));
}

TEST(DijkstraTree, UnreachablePathEmpty) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kDirected, 3);
  b.add_edge(0, 1, 1);
  const auto tree = dijkstra_tree(b.build(), 0);
  EXPECT_TRUE(tree.path_to(2).empty());
}

TEST(DijkstraTree, PathCostMatchesDistance) {
  const auto g0 = graph::erdos_renyi_gnm<std::uint32_t>(60, 200, 3);
  const auto g = graph::randomize_weights<std::uint32_t>(g0, 1, 9, 4);
  const auto tree = dijkstra_tree(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto path = tree.path_to(v);
    if (path.empty()) continue;
    std::uint32_t cost = 0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      const auto nb = g.neighbors(path[i]);
      const auto ws = g.weights(path[i]);
      std::uint32_t best = infinity<std::uint32_t>();
      for (std::size_t e = 0; e < nb.size(); ++e) {
        if (nb[e] == path[i + 1]) best = std::min(best, ws[e]);
      }
      ASSERT_FALSE(is_infinite(best)) << "path uses a non-edge";
      cost += best;
    }
    EXPECT_EQ(cost, tree.dist[v]) << "path cost mismatch at vertex " << v;
  }
}

// ---------- agreement properties across SSSP algorithms ----------

class SsspAgreement : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SsspAgreement, DijkstraEqualsBellmanFordAndSpfa) {
  const auto seed = GetParam();
  auto g = graph::erdos_renyi_gnm<std::uint32_t>(80, 300, seed,
                                                 seed % 2 ? Directedness::kDirected
                                                          : Directedness::kUndirected);
  g = graph::randomize_weights<std::uint32_t>(g, 1, 15, seed ^ 0x9999);
  for (const VertexId s : {VertexId{0}, VertexId{40}, VertexId{79}}) {
    const auto d1 = dijkstra(g, s);
    EXPECT_EQ(d1, bellman_ford(g, s)) << "bellman-ford, s=" << s;
    EXPECT_EQ(d1, spfa(g, s)) << "spfa, s=" << s;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SsspAgreement, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8),
                         [](const ::testing::TestParamInfo<std::uint64_t>& info) {
                           return "seed" + std::to_string(info.param);
                         });

// ---------- BFS ----------

TEST(Bfs, HopsOnPath) {
  const auto g = graph::path_graph<std::uint32_t>(5);
  const auto hops = bfs_hops(g, 0);
  EXPECT_EQ(hops, (std::vector<VertexId>{0, 1, 2, 3, 4}));
}

TEST(Bfs, UnreachableMarked) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kDirected, 4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const auto hops = bfs_hops(b.build(), 0);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[2], kInvalidVertex);
  EXPECT_EQ(hops[3], kInvalidVertex);
}

TEST(Bfs, EqualsDijkstraOnUnitWeights) {
  const auto g = graph::barabasi_albert<std::uint32_t>(200, 3, 9);
  const auto hops = bfs_hops(g, 5);
  const auto dist = dijkstra(g, 5);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (hops[v] == kInvalidVertex) {
      EXPECT_TRUE(is_infinite(dist[v]));
    } else {
      EXPECT_EQ(hops[v], dist[v]);
    }
  }
}

TEST(Bfs, AllReachableCheck) {
  EXPECT_TRUE(all_reachable_from(graph::cycle_graph<std::uint32_t>(6), 0));
  graph::GraphBuilder<std::uint32_t> b(Directedness::kUndirected, 3);
  b.add_edge(0, 1);
  EXPECT_FALSE(all_reachable_from(b.build(), 0));
}

}  // namespace
