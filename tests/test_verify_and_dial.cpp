// Tests for apsp::verify_distances and Dial's bucket-queue Dijkstra.
#include <gtest/gtest.h>

#include "apsp/floyd_warshall.hpp"
#include "apsp/parallel.hpp"
#include "apsp/verify.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "sssp/dial.hpp"
#include "sssp/dijkstra.hpp"

namespace {

using namespace parapsp;

// ---------- verify_distances ----------

TEST(Verify, AcceptsCorrectMatrix) {
  const auto g = graph::barabasi_albert<std::uint32_t>(120, 3, 21);
  const auto D = apsp::par_apsp(g).distances;
  const auto report = apsp::verify_distances(g, D);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Verify, CatchesWrongDiagonal) {
  const auto g = graph::path_graph<std::uint32_t>(4);
  auto D = apsp::floyd_warshall(g);
  D.at(2, 2) = 5;
  EXPECT_FALSE(apsp::verify_distances(g, D).ok());
}

TEST(Verify, CatchesTooLargeEntry) {
  const auto g = graph::path_graph<std::uint32_t>(5);
  auto D = apsp::floyd_warshall(g);
  D.at(0, 4) = 9;  // relaxable through edge (3,4)
  const auto report = apsp::verify_distances(g, D);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("relaxed"), std::string::npos);
}

TEST(Verify, CatchesTooSmallEntry) {
  // Undercounting is caught by the sampled Dijkstra oracle.
  const auto g = graph::path_graph<std::uint32_t>(5);
  auto D = apsp::floyd_warshall(g);
  D.at(0, 4) = 1;
  const auto report = apsp::verify_distances(g, D, /*sample_rows=*/5);
  EXPECT_FALSE(report.ok());
}

TEST(Verify, CatchesAsymmetry) {
  const auto g = graph::cycle_graph<std::uint32_t>(6);
  auto D = apsp::floyd_warshall(g);
  // Break symmetry without breaking local optimality upward: make one entry
  // asymmetric (this also triggers the oracle, but symmetry fires first).
  D.at(1, 4) = D.at(4, 1) + 0;  // ensure equal first
  D.at(1, 4) = 2;               // true distance is 3
  EXPECT_FALSE(apsp::verify_distances(g, D, 0).ok());
}

TEST(Verify, CatchesSizeMismatch) {
  const auto g = graph::path_graph<std::uint32_t>(4);
  const apsp::DistanceMatrix<std::uint32_t> D(3);
  EXPECT_FALSE(apsp::verify_distances(g, D).ok());
}

TEST(Verify, ProblemCapRespected) {
  const auto g = graph::complete_graph<std::uint32_t>(8);
  apsp::DistanceMatrix<std::uint32_t> D(8, 0);  // everything zero: badly wrong
  const auto report = apsp::verify_distances(g, D, 8, 1, /*max_problems=*/3);
  EXPECT_FALSE(report.ok());
  EXPECT_LE(report.problems.size(), 3u);
}

// ---------- Dial ----------

TEST(Dial, MatchesDijkstraUnitWeights) {
  const auto g = graph::barabasi_albert<std::uint32_t>(300, 3, 22);
  for (const VertexId s : {VertexId{0}, VertexId{123}, VertexId{299}}) {
    EXPECT_EQ(sssp::dial(g, s), sssp::dijkstra(g, s)) << "s=" << s;
  }
}

TEST(Dial, MatchesDijkstraWeighted) {
  auto g = graph::erdos_renyi_gnm<std::uint32_t>(200, 700, 23);
  g = graph::randomize_weights<std::uint32_t>(g, 1, 12, 24);
  for (const VertexId s : {VertexId{0}, VertexId{77}}) {
    EXPECT_EQ(sssp::dial(g, s), sssp::dijkstra(g, s)) << "s=" << s;
  }
}

TEST(Dial, ZeroWeightEdges) {
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kDirected);
  b.add_edge(0, 1, 0);
  b.add_edge(1, 2, 0);
  b.add_edge(2, 3, 2);
  b.add_edge(0, 3, 5);
  const auto d = sssp::dial(b.build(), 0);
  EXPECT_EQ(d, (std::vector<std::uint32_t>{0, 0, 0, 2}));
}

TEST(Dial, AllZeroWeights) {
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kUndirected);
  b.add_edge(0, 1, 0);
  b.add_edge(1, 2, 0);
  const auto d = sssp::dial(b.build(), 2);
  EXPECT_EQ(d, (std::vector<std::uint32_t>{0, 0, 0}));
}

TEST(Dial, DisconnectedStaysInfinite) {
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kUndirected, 4);
  b.add_edge(0, 1, 3);
  const auto d = sssp::dial(b.build(), 0);
  EXPECT_TRUE(is_infinite(d[2]));
  EXPECT_TRUE(is_infinite(d[3]));
}

TEST(Dial, ExplicitBoundValidated) {
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kDirected);
  b.add_edge(0, 1, 9);
  const auto g = b.build();
  EXPECT_THROW((void)sssp::dial(g, 0, 5u), std::invalid_argument);
  EXPECT_EQ(sssp::dial(g, 0, 9u)[1], 9u);
}

TEST(Dial, SourceOutOfRangeThrows) {
  const auto g = graph::path_graph<std::uint32_t>(3);
  EXPECT_THROW((void)sssp::dial(g, 7), std::out_of_range);
}

TEST(Dial, BucketWrapStress) {
  // Long path with max weight forces many wraps of the circular buckets.
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kUndirected);
  for (VertexId v = 0; v + 1 < 64; ++v) b.add_edge(v, v + 1, 1 + v % 5);
  const auto g = b.build();
  EXPECT_EQ(sssp::dial(g, 0), sssp::dijkstra(g, 0));
}

}  // namespace
