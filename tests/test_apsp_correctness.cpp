// The central correctness property of the whole library: every APSP
// algorithm produces the byte-identical distance matrix, across graph
// families, directedness, weights, and (dis)connectivity — parameterized
// over the standard case roster from test_helpers.hpp.
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace {

using namespace parapsp;
using parapsp::testing::GraphCase;

class ApspCorrectness : public ::testing::TestWithParam<GraphCase> {
 protected:
  void SetUp() override {
    g_ = parapsp::testing::make_graph(GetParam());
    reference_ = apsp::floyd_warshall(g_);
  }

  graph::Graph<std::uint32_t> g_;
  apsp::DistanceMatrix<std::uint32_t> reference_;
};

TEST_P(ApspCorrectness, FloydWarshallBlocked) {
  for (const VertexId block : {1u, 7u, 32u, 1024u}) {
    parapsp::testing::expect_same_distances(apsp::floyd_warshall_blocked(g_, block),
                                            reference_,
                                            "blocked fw, block=" + std::to_string(block));
  }
}

TEST_P(ApspCorrectness, RepeatedDijkstra) {
  parapsp::testing::expect_same_distances(apsp::repeated_dijkstra(g_), reference_,
                                          "repeated dijkstra");
  parapsp::testing::expect_same_distances(apsp::repeated_dijkstra_parallel(g_),
                                          reference_, "repeated dijkstra parallel");
}

TEST_P(ApspCorrectness, PengBasic) {
  parapsp::testing::expect_same_distances(apsp::peng_basic(g_).distances, reference_,
                                          "peng basic");
}

TEST_P(ApspCorrectness, PengOptimizedRatioSweep) {
  for (const double r : {0.05, 0.5, 1.0}) {
    parapsp::testing::expect_same_distances(apsp::peng_optimized(g_, r).distances,
                                            reference_,
                                            "peng optimized r=" + std::to_string(r));
  }
}

TEST_P(ApspCorrectness, PengAdaptive) {
  parapsp::testing::expect_same_distances(apsp::peng_adaptive(g_).distances, reference_,
                                          "peng adaptive");
}

TEST_P(ApspCorrectness, ParAlg1) {
  parapsp::testing::expect_same_distances(apsp::par_alg1(g_).distances, reference_,
                                          "paralg1");
}

TEST_P(ApspCorrectness, ParAlg2AllSchedules) {
  for (const auto sched : {apsp::Schedule::kBlock, apsp::Schedule::kStaticCyclic,
                           apsp::Schedule::kDynamicCyclic}) {
    parapsp::testing::expect_same_distances(
        apsp::par_alg2(g_, sched).distances, reference_,
        std::string("paralg2 ") + apsp::to_string(sched));
  }
}

TEST_P(ApspCorrectness, ParApsp) {
  parapsp::testing::expect_same_distances(apsp::par_apsp(g_).distances, reference_,
                                          "parapsp");
}

TEST_P(ApspCorrectness, ParApspWithEveryOrdering) {
  for (const auto kind :
       {order::OrderingKind::kIdentity, order::OrderingKind::kSelection,
        order::OrderingKind::kStdSort, order::OrderingKind::kCounting,
        order::OrderingKind::kParBuckets, order::OrderingKind::kParMax,
        order::OrderingKind::kMultiLists}) {
    parapsp::testing::expect_same_distances(
        apsp::par_apsp_with(g_, kind).distances, reference_,
        std::string("parapsp ordering=") + order::to_string(kind));
  }
}

TEST_P(ApspCorrectness, DiagonalIsZeroAndRowsOfUnreachableStayInfinite) {
  const auto result = apsp::par_apsp(g_);
  for (VertexId v = 0; v < g_.num_vertices(); ++v) {
    EXPECT_EQ(result.distances.at(v, v), 0u);
  }
}

TEST_P(ApspCorrectness, TriangleInequalityHolds) {
  // Property check independent of the reference: D[u,w] <= D[u,v] + D[v,w].
  const auto& D = reference_;
  const VertexId n = g_.num_vertices();
  util::Xoshiro256 rng(99);
  for (int i = 0; i < 2000; ++i) {
    const auto u = static_cast<VertexId>(rng.bounded(n));
    const auto v = static_cast<VertexId>(rng.bounded(n));
    const auto w = static_cast<VertexId>(rng.bounded(n));
    EXPECT_LE(D.at(u, w), dist_add(D.at(u, v), D.at(v, w)));
  }
}

TEST_P(ApspCorrectness, EdgesAreUpperBounds) {
  const auto& D = reference_;
  for (VertexId u = 0; u < g_.num_vertices(); ++u) {
    const auto nb = g_.neighbors(u);
    const auto ws = g_.weights(u);
    for (std::size_t i = 0; i < nb.size(); ++i) {
      EXPECT_LE(D.at(u, nb[i]), ws[i]);
    }
  }
}

TEST_P(ApspCorrectness, UndirectedMatrixIsSymmetric) {
  if (g_.is_directed()) GTEST_SKIP() << "directed case";
  const auto& D = reference_;
  for (VertexId u = 0; u < g_.num_vertices(); ++u) {
    for (VertexId v = u + 1; v < g_.num_vertices(); ++v) {
      ASSERT_EQ(D.at(u, v), D.at(v, u)) << u << "," << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, ApspCorrectness,
                         ::testing::ValuesIn(parapsp::testing::standard_cases()),
                         parapsp::testing::case_name);

// ---------- double-weighted instantiation ----------

TEST(ApspCorrectnessDouble, AllPengVariantsMatchFloydWarshall) {
  auto g = graph::erdos_renyi_gnm<double>(90, 320, 31);
  g = graph::randomize_weights<double>(g, 0.25, 4.0, 32);
  const auto reference = apsp::floyd_warshall(g);

  const auto check = [&](const apsp::DistanceMatrix<double>& got, const char* label) {
    ASSERT_EQ(got.size(), reference.size());
    for (VertexId u = 0; u < got.size(); ++u) {
      for (VertexId v = 0; v < got.size(); ++v) {
        const double a = got.at(u, v), b = reference.at(u, v);
        if (is_infinite(a) || is_infinite(b)) {
          ASSERT_EQ(is_infinite(a), is_infinite(b)) << label << " " << u << "," << v;
          continue;
        }
        // Different relaxation orders sum doubles differently; allow ulp-
        // level drift.
        ASSERT_NEAR(a, b, 1e-9) << label;
      }
    }
  };
  check(apsp::peng_basic(g).distances, "peng basic");
  check(apsp::peng_optimized(g).distances, "peng optimized");
  check(apsp::par_apsp(g).distances, "parapsp");
}

TEST(ApspCorrectnessFloat, ParApspMatchesRepeatedDijkstra) {
  auto g = graph::barabasi_albert<float>(120, 3, 33);
  g = graph::randomize_weights<float>(g, 0.5f, 2.0f, 34);
  const auto got = apsp::par_apsp(g).distances;
  const auto rd = apsp::repeated_dijkstra(g);
  for (VertexId u = 0; u < got.size(); ++u) {
    for (VertexId v = 0; v < got.size(); ++v) {
      const float a = got.at(u, v), b = rd.at(u, v);
      if (is_infinite(a) || is_infinite(b)) {
        ASSERT_EQ(is_infinite(a), is_infinite(b)) << u << "," << v;
        continue;
      }
      ASSERT_NEAR(a, b, 1e-4f) << u << "," << v;
    }
  }
}

}  // namespace
