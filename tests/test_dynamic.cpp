// Tests for incremental APSP updates (edge insertions / weight decreases):
// the typed-error contract, the torn-batch guarantee, the no-op fast path,
// and the incremental-vs-recompute differentials.
#include <gtest/gtest.h>

#include <limits>

#include "apsp/dynamic.hpp"
#include "check/oracle.hpp"
#include "obs/metrics.hpp"
#include "test_helpers.hpp"
#include "util/exec_control.hpp"

namespace {

using namespace parapsp;
using apsp::EdgeInsertion;

TEST(DynamicApsp, SingleInsertionMatchesRecompute) {
  // Two far-apart grid corners get a shortcut; incremental must equal
  // rebuild-from-scratch.
  auto g = graph::grid_graph<std::uint32_t>(6, 6);
  auto D = apsp::floyd_warshall(g);

  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kUndirected, 36);
  for (VertexId u = 0; u < 36; ++u) {
    for (std::size_t i = 0; i < g.neighbors(u).size(); ++i) {
      if (u < g.neighbors(u)[i]) b.add_edge(u, g.neighbors(u)[i], g.weights(u)[i]);
    }
  }
  b.add_edge(0, 35, 1);
  const auto g2 = b.build();

  const auto improved = apsp::apply_insertion(
      D, EdgeInsertion<std::uint32_t>{0, 35, 1, /*undirected=*/true});
  ASSERT_TRUE(improved) << improved.status().message();
  EXPECT_GT(*improved, 0u);
  parapsp::testing::expect_same_distances(D, apsp::floyd_warshall(g2),
                                          "incremental vs recompute");
}

TEST(DynamicApsp, DirectedInsertion) {
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kDirected);
  b.add_edge(0, 1, 4);
  b.add_edge(1, 2, 4);
  auto D = apsp::floyd_warshall(b.build());
  EXPECT_EQ(D.at(0, 2), 8u);
  ASSERT_TRUE(apsp::apply_insertion(D, EdgeInsertion<std::uint32_t>{0, 2, 3, false}));
  EXPECT_EQ(D.at(0, 2), 3u);
  // Directed: the reverse pair must be untouched.
  EXPECT_TRUE(is_infinite(D.at(2, 0)));
}

TEST(DynamicApsp, WeightDecreaseIsInsertion) {
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kUndirected);
  b.add_edge(0, 1, 10);
  b.add_edge(1, 2, 1);
  auto D = apsp::floyd_warshall(b.build());
  EXPECT_EQ(D.at(0, 2), 11u);
  // Edge (0,1) drops from 10 to 2: model as an insertion of the new weight.
  ASSERT_TRUE(apsp::apply_insertion(D, EdgeInsertion<std::uint32_t>{0, 1, 2, true}));
  EXPECT_EQ(D.at(0, 1), 2u);
  EXPECT_EQ(D.at(0, 2), 3u);
  EXPECT_EQ(D.at(2, 0), 3u);
}

TEST(DynamicApsp, NoopWhenEdgeDoesNotHelp) {
  const auto g = graph::complete_graph<std::uint32_t>(5);
  auto D = apsp::floyd_warshall(g);
  const auto improved =
      apsp::apply_insertion(D, EdgeInsertion<std::uint32_t>{0, 1, 7, true});
  ASSERT_TRUE(improved) << improved.status().message();
  EXPECT_EQ(*improved, 0u);
}

TEST(DynamicApsp, NoopFastPathIsBitIdentical) {
  // The fast path (D[u,v] <= w) must return 0 without scanning — and the
  // oracle proves the skipped pivot could not have changed anything: the
  // matrix is bit-identical to the pre-call state.
  const auto g = graph::barabasi_albert<std::uint32_t>(64, 3, 5);
  auto D = apsp::repeated_dijkstra(g);
  const auto before = D;

  // An edge no shorter than the current distance, both orientations.
  const EdgeInsertion<std::uint32_t> e{3, 41, D.at(3, 41) + 2, /*undirected=*/true};
  const auto improved = apsp::apply_insertion(D, e);
  ASSERT_TRUE(improved) << improved.status().message();
  EXPECT_EQ(*improved, 0u);

  check::Provenance prov;
  prov.backend_a = "after-noop-insertion";
  prov.backend_b = "before";
  const auto diff = check::diff_matrices(D, before, prov);
  ASSERT_TRUE(diff) << diff.status().to_string();
  EXPECT_FALSE(diff->has_value()) << (**diff).to_string();
}

TEST(DynamicApsp, NoopFastPathCountsSkips) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  const auto g = graph::complete_graph<std::uint32_t>(6);
  auto D = apsp::floyd_warshall(g);
  obs::Collection window(true);
  // complete_graph has unit distances everywhere: w=7 is dominated in both
  // orientations, so the undirected insertion skips both pivots.
  ASSERT_TRUE(apsp::apply_insertion(D, EdgeInsertion<std::uint32_t>{0, 1, 7, true}));
  const auto totals = obs::Registry::global().totals();
  EXPECT_EQ(totals[static_cast<std::size_t>(obs::Counter::kDynNoopSkips)], 2u);
  EXPECT_EQ(totals[static_cast<std::size_t>(obs::Counter::kRowCellsScanned)], 0u);
}

TEST(DynamicApsp, ConnectsComponents) {
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kUndirected, 6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  auto D = apsp::floyd_warshall(b.build());
  EXPECT_TRUE(is_infinite(D.at(0, 5)));
  ASSERT_TRUE(apsp::apply_insertion(D, EdgeInsertion<std::uint32_t>{2, 3, 1, true}));
  EXPECT_EQ(D.at(0, 5), 5u);  // 0-1-2-3-4-5
  EXPECT_EQ(D.at(5, 0), 5u);
}

TEST(DynamicApsp, RandomBatchMatchesRecompute) {
  // Property: a random base graph + a random batch of insertions, applied
  // incrementally, equals the from-scratch solve of the final graph.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    util::Xoshiro256 rng(seed);
    const VertexId n = 60;
    auto base = graph::erdos_renyi_gnm<std::uint32_t>(n, 120, seed);
    base = graph::randomize_weights<std::uint32_t>(base, 1, 9, seed ^ 7);
    auto D = apsp::floyd_warshall(base);

    graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kUndirected, n);
    for (VertexId u = 0; u < n; ++u) {
      const auto nb = base.neighbors(u);
      const auto ws = base.weights(u);
      for (std::size_t i = 0; i < nb.size(); ++i) {
        if (u < nb[i]) b.add_edge(u, nb[i], ws[i]);
      }
    }

    std::vector<EdgeInsertion<std::uint32_t>> batch;
    for (int e = 0; e < 12; ++e) {
      const auto u = static_cast<VertexId>(rng.bounded(n));
      const auto v = static_cast<VertexId>(rng.bounded(n));
      if (u == v) continue;
      const auto w = static_cast<std::uint32_t>(1 + rng.bounded(9));
      batch.push_back({u, v, w, true});
      b.add_edge(u, v, w);
    }
    ASSERT_TRUE(apsp::apply_insertions(D, batch));
    parapsp::testing::expect_same_distances(
        D, apsp::floyd_warshall(b.build()),
        "batch seed " + std::to_string(seed));
  }
}

TEST(DynamicApsp, RejectsBadInputWithTypedErrors) {
  apsp::DistanceMatrix<std::uint32_t> D(3, 0);
  const auto oob =
      apsp::apply_insertion(D, EdgeInsertion<std::uint32_t>{0, 9, 1});
  ASSERT_FALSE(oob);
  EXPECT_EQ(oob.status().code(), util::ErrorCode::kInvalidArgument);

  apsp::DistanceMatrix<double> Dd(3, 0.0);
  const auto neg = apsp::apply_insertion(Dd, EdgeInsertion<double>{0, 1, -1.0});
  ASSERT_FALSE(neg);
  EXPECT_EQ(neg.status().code(), util::ErrorCode::kInvalidArgument);
  const auto nan = apsp::apply_insertion(
      Dd, EdgeInsertion<double>{0, 1, std::numeric_limits<double>::quiet_NaN()});
  ASSERT_FALSE(nan);
  EXPECT_EQ(nan.status().code(), util::ErrorCode::kInvalidArgument);
}

TEST(DynamicApsp, InvalidBatchEntryLeavesMatrixUntouched) {
  // The torn-batch regression: entry 0 would improve the matrix, entry 1 is
  // invalid — the call must fail without applying entry 0.
  const auto g = graph::grid_graph<std::uint32_t>(5, 5);
  auto D = apsp::floyd_warshall(g);
  const auto before = D;

  const std::vector<EdgeInsertion<std::uint32_t>> batch = {
      {0, 24, 1, true},   // a genuine shortcut across the grid
      {0, 99, 1, true},   // out of range -> whole batch must be rejected
  };
  const auto r = apsp::apply_insertions(D, batch);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.status().code(), util::ErrorCode::kInvalidArgument);
  EXPECT_NE(r.status().message().find("batch entry 1"), std::string::npos)
      << r.status().message();

  check::Provenance prov;
  prov.backend_a = "after-rejected-batch";
  prov.backend_b = "before";
  const auto diff = check::diff_matrices(D, before, prov);
  ASSERT_TRUE(diff) << diff.status().to_string();
  EXPECT_FALSE(diff->has_value())
      << "rejected batch tore the matrix: " << (**diff).to_string();
}

TEST(DynamicApsp, ControlStopsWithTypedError) {
  const auto g = graph::grid_graph<std::uint32_t>(5, 5);
  auto D = apsp::floyd_warshall(g);
  const auto before = D;

  util::ExecutionControl control;
  control.request_cancel();
  const auto r = apsp::apply_insertion(
      D, EdgeInsertion<std::uint32_t>{0, 24, 1, true}, &control);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.status().code(), util::ErrorCode::kCancelled);
  // Cancel observed at entry: nothing ran, matrix untouched.
  EXPECT_EQ(D, before);

  util::ExecutionControl expired;
  expired.set_deadline_after(-1.0);
  const auto t = apsp::apply_insertion(
      D, EdgeInsertion<std::uint32_t>{0, 24, 1, true}, &expired);
  ASSERT_FALSE(t);
  EXPECT_EQ(t.status().code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(D, before);
}

TEST(DynamicApsp, ThreadInvariant) {
  const auto g = graph::barabasi_albert<std::uint32_t>(100, 3, 9);
  auto base = apsp::floyd_warshall(g);
  auto d1 = base;
  auto d4 = base;
  const EdgeInsertion<std::uint32_t> e{3, 77, 1, true};
  {
    util::ThreadScope scope(1);
    ASSERT_TRUE(apsp::apply_insertion(d1, e));
  }
  {
    util::ThreadScope scope(4);
    ASSERT_TRUE(apsp::apply_insertion(d4, e));
  }
  EXPECT_EQ(d1, d4);
}

}  // namespace
