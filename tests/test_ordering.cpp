// Tests for the ordering procedures — the paper's Section 4 core.
//
// Invariants:
//  * every procedure returns a permutation of [0, n);
//  * selection(r=1), stdsort, counting, ParMax and MultiLists are *exact*
//    descending degree orders;
//  * MultiLists equals the sequential counting sort byte-for-byte (static
//    scheduling makes ties deterministic);
//  * ParBuckets is only bucket-monotone (its approximation error is the
//    point of Figure 5);
//  * all parallel procedures stay exact at any thread count.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "order/counting.hpp"
#include "order/dispatch.hpp"
#include "order/multilists.hpp"
#include "order/ordering.hpp"
#include "order/parbuckets.hpp"
#include "order/parmax.hpp"
#include "order/selection.hpp"
#include "order/stdsort.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace parapsp;
using namespace parapsp::order;

std::vector<VertexId> random_degrees(std::size_t n, VertexId max_deg, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<VertexId> degrees(n);
  for (auto& d : degrees) d = static_cast<VertexId>(rng.bounded(max_deg + 1));
  return degrees;
}

std::vector<VertexId> powerlaw_degrees(std::size_t n, std::uint64_t seed) {
  // Degree shape mimicking a scale-free graph: most tiny, few huge.
  util::Xoshiro256 rng(seed);
  std::vector<VertexId> degrees(n);
  for (auto& d : degrees) {
    const double u = rng.uniform();
    d = static_cast<VertexId>(2.0 * std::pow(1.0 - u, -1.0 / 1.5));
  }
  return degrees;
}

// ---------- shared helpers ----------

TEST(OrderingHelpers, PermutationCheck) {
  EXPECT_TRUE(is_permutation_of_vertices(std::vector<VertexId>{2, 0, 1}, 3));
  EXPECT_FALSE(is_permutation_of_vertices(std::vector<VertexId>{0, 0, 1}, 3));
  EXPECT_FALSE(is_permutation_of_vertices(std::vector<VertexId>{0, 1, 3}, 3));
  EXPECT_FALSE(is_permutation_of_vertices(std::vector<VertexId>{0, 1}, 3));
  EXPECT_TRUE(is_permutation_of_vertices(std::vector<VertexId>{}, 0));
}

TEST(OrderingHelpers, DescendingCheck) {
  const std::vector<VertexId> degrees{5, 3, 3, 1};
  EXPECT_TRUE(is_descending_degree_order(std::vector<VertexId>{0, 1, 2, 3}, degrees));
  EXPECT_TRUE(is_descending_degree_order(std::vector<VertexId>{0, 2, 1, 3}, degrees));
  EXPECT_FALSE(is_descending_degree_order(std::vector<VertexId>{1, 0, 2, 3}, degrees));
}

TEST(OrderingHelpers, InversionCount) {
  const std::vector<VertexId> degrees{1, 2, 3};
  EXPECT_EQ(count_degree_inversions(std::vector<VertexId>{2, 1, 0}, degrees), 0u);
  EXPECT_EQ(count_degree_inversions(std::vector<VertexId>{0, 1, 2}, degrees), 2u);
}

TEST(OrderingHelpers, KindRoundtrip) {
  for (const auto k : {OrderingKind::kIdentity, OrderingKind::kSelection,
                       OrderingKind::kStdSort, OrderingKind::kCounting,
                       OrderingKind::kParBuckets, OrderingKind::kParMax,
                       OrderingKind::kMultiLists}) {
    EXPECT_EQ(ordering_kind_from_string(to_string(k)), k);
  }
  EXPECT_THROW(ordering_kind_from_string("bogus"), std::invalid_argument);
}

// ---------- exact procedures, parameterized over degree shapes ----------

struct DegreeShape {
  std::string name;
  std::vector<VertexId> degrees;
};

class ExactOrdering : public ::testing::TestWithParam<DegreeShape> {};

TEST_P(ExactOrdering, SelectionFullRatio) {
  const auto& degrees = GetParam().degrees;
  const auto order = selection_order(degrees, 1.0);
  EXPECT_TRUE(is_permutation_of_vertices(order, degrees.size()));
  EXPECT_TRUE(is_descending_degree_order(order, degrees));
}

TEST_P(ExactOrdering, StdSort) {
  const auto& degrees = GetParam().degrees;
  const auto order = stdsort_order(degrees);
  EXPECT_TRUE(is_permutation_of_vertices(order, degrees.size()));
  EXPECT_TRUE(is_descending_degree_order(order, degrees));
}

TEST_P(ExactOrdering, Counting) {
  const auto& degrees = GetParam().degrees;
  const auto order = counting_order(degrees);
  EXPECT_TRUE(is_permutation_of_vertices(order, degrees.size()));
  EXPECT_TRUE(is_descending_degree_order(order, degrees));
}

TEST_P(ExactOrdering, ParMax) {
  const auto& degrees = GetParam().degrees;
  const auto order = parmax_order(degrees);
  EXPECT_TRUE(is_permutation_of_vertices(order, degrees.size()));
  EXPECT_TRUE(is_descending_degree_order(order, degrees));
}

TEST_P(ExactOrdering, MultiLists) {
  const auto& degrees = GetParam().degrees;
  const auto order = multilists_order(degrees);
  EXPECT_TRUE(is_permutation_of_vertices(order, degrees.size()));
  EXPECT_TRUE(is_descending_degree_order(order, degrees));
}

TEST_P(ExactOrdering, MultiListsMatchesCountingSort) {
  const auto& degrees = GetParam().degrees;
  EXPECT_EQ(multilists_order(degrees), counting_order(degrees));
}

TEST_P(ExactOrdering, CountingMatchesStdSort) {
  // Both are stable-by-id within a degree, so they must agree exactly.
  const auto& degrees = GetParam().degrees;
  EXPECT_EQ(counting_order(degrees), stdsort_order(degrees));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ExactOrdering,
    ::testing::Values(
        DegreeShape{"empty", {}},
        DegreeShape{"single", {7}},
        DegreeShape{"all_equal", std::vector<VertexId>(100, 4)},
        DegreeShape{"all_zero", std::vector<VertexId>(50, 0)},
        DegreeShape{"already_descending", {9, 7, 5, 3, 1}},
        DegreeShape{"ascending", {1, 2, 3, 4, 5, 6, 7, 8}},
        DegreeShape{"uniform_random", random_degrees(1000, 50, 1)},
        DegreeShape{"uniform_random_wide", random_degrees(2000, 1999, 2)},
        DegreeShape{"powerlaw", powerlaw_degrees(3000, 3)},
        DegreeShape{"two_values", []{
          std::vector<VertexId> d(200, 1);
          for (std::size_t i = 0; i < d.size(); i += 17) d[i] = 100;
          return d;
        }()}),
    [](const ::testing::TestParamInfo<DegreeShape>& info) { return info.param.name; });

// ---------- selection sort: partial ratio semantics ----------

TEST(Selection, PartialRatioSortsPrefixExactly) {
  const auto degrees = random_degrees(500, 100, 4);
  const double r = 0.2;
  const auto order = selection_order(degrees, r);
  EXPECT_TRUE(is_permutation_of_vertices(order, degrees.size()));
  const auto limit = static_cast<std::size_t>(std::ceil(r * 500));
  // Prefix is exactly descending...
  for (std::size_t i = 0; i + 1 < limit; ++i) {
    EXPECT_GE(degrees[order[i]], degrees[order[i + 1]]);
  }
  // ...and dominates the tail.
  const auto tail_max =
      *std::max_element(order.begin() + static_cast<std::ptrdiff_t>(limit), order.end(),
                        [&](VertexId a, VertexId b) { return degrees[a] < degrees[b]; });
  EXPECT_GE(degrees[order[limit - 1]], degrees[tail_max]);
}

TEST(Selection, RejectsBadRatio) {
  const std::vector<VertexId> degrees{1, 2};
  EXPECT_THROW((void)selection_order(degrees, 0.0), std::invalid_argument);
  EXPECT_THROW((void)selection_order(degrees, 1.5), std::invalid_argument);
}

// ---------- ParBuckets: approximation semantics ----------

TEST(ParBuckets, PermutationAndBucketMonotone) {
  const auto degrees = powerlaw_degrees(2000, 5);
  const auto order = parbuckets_order(degrees);
  ASSERT_TRUE(is_permutation_of_vertices(order, degrees.size()));

  // Bucket-monotone: the bucket index of consecutive entries never increases.
  const auto [min_it, max_it] = std::minmax_element(degrees.begin(), degrees.end());
  const double span = static_cast<double>(*max_it) - static_cast<double>(*min_it);
  auto bin = [&](VertexId d) {
    return span == 0.0 ? 0l
                       : static_cast<long>(100.0 * (static_cast<double>(d) - *min_it) / span);
  };
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    EXPECT_GE(bin(degrees[order[i]]), bin(degrees[order[i + 1]]));
  }
}

TEST(ParBuckets, IsApproximateOnFineGrainedDegrees) {
  // 2000 distinct degrees crammed into 101 buckets must create inversions.
  std::vector<VertexId> degrees(2000);
  util::Xoshiro256 rng(6);
  for (auto& d : degrees) d = static_cast<VertexId>(rng.bounded(2000));
  const auto order = parbuckets_order(degrees);
  EXPECT_GT(count_degree_inversions(order, degrees), 0u);
}

TEST(ParBuckets, MoreRangesReduceError) {
  const auto degrees = random_degrees(3000, 2999, 7);
  const auto coarse = parbuckets_order(degrees, {.num_ranges = 100});
  const auto fine = parbuckets_order(degrees, {.num_ranges = 1000});
  EXPECT_LE(count_degree_inversions(fine, degrees),
            count_degree_inversions(coarse, degrees));
}

TEST(ParBuckets, ExactWhenBucketsCoverDegrees) {
  // Degrees 0..100 with 100 ranges: one degree per bucket -> exact.
  const auto degrees = random_degrees(1000, 100, 8);
  const auto order = parbuckets_order(degrees, {.num_ranges = 100});
  EXPECT_TRUE(is_descending_degree_order(order, degrees));
}

TEST(ParBuckets, AllDegreesEqual) {
  const std::vector<VertexId> degrees(64, 9);
  const auto order = parbuckets_order(degrees);
  EXPECT_TRUE(is_permutation_of_vertices(order, degrees.size()));
}

TEST(ParBuckets, RejectsZeroRanges) {
  EXPECT_THROW((void)parbuckets_order({1, 2}, {.num_ranges = 0}), std::invalid_argument);
}

// ---------- ParMax options ----------

TEST(ParMax, ThresholdSweepStaysExact) {
  const auto degrees = powerlaw_degrees(2000, 9);
  for (const double frac : {0.0, 0.01, 0.1, 0.5, 1.0}) {
    const auto order = parmax_order(degrees, {.threshold_fraction = frac});
    EXPECT_TRUE(is_permutation_of_vertices(order, degrees.size())) << frac;
    EXPECT_TRUE(is_descending_degree_order(order, degrees)) << frac;
  }
}

TEST(ParMax, RejectsBadThreshold) {
  EXPECT_THROW((void)parmax_order({1}, {.threshold_fraction = -0.1}),
               std::invalid_argument);
  EXPECT_THROW((void)parmax_order({1}, {.threshold_fraction = 1.1}),
               std::invalid_argument);
}

// ---------- MultiLists options ----------

TEST(MultiLists, ParRatioSweepStaysExact) {
  const auto degrees = powerlaw_degrees(2000, 10);
  const auto want = counting_order(degrees);
  for (const double ratio : {0.0, 0.1, 0.5, 1.0}) {
    const auto order = multilists_order(degrees, {.par_ratio = ratio});
    EXPECT_EQ(order, want) << "par_ratio=" << ratio;
  }
}

TEST(MultiLists, RejectsBadRatio) {
  EXPECT_THROW((void)multilists_order({1}, {.par_ratio = 2.0}), std::invalid_argument);
}

// ---------- thread-count invariance (exact procedures) ----------

class ThreadedOrdering : public ::testing::TestWithParam<int> {};

TEST_P(ThreadedOrdering, ParMaxExactAtAnyThreadCount) {
  util::ThreadScope scope(GetParam());
  const auto degrees = powerlaw_degrees(5000, 11);
  const auto order = parmax_order(degrees);
  EXPECT_TRUE(is_permutation_of_vertices(order, degrees.size()));
  EXPECT_TRUE(is_descending_degree_order(order, degrees));
}

TEST_P(ThreadedOrdering, MultiListsMatchesCountingAtAnyThreadCount) {
  util::ThreadScope scope(GetParam());
  const auto degrees = powerlaw_degrees(5000, 12);
  EXPECT_EQ(multilists_order(degrees), counting_order(degrees));
}

TEST_P(ThreadedOrdering, ParBucketsPermutationAtAnyThreadCount) {
  util::ThreadScope scope(GetParam());
  const auto degrees = powerlaw_degrees(5000, 13);
  EXPECT_TRUE(is_permutation_of_vertices(parbuckets_order(degrees), degrees.size()));
}

INSTANTIATE_TEST_SUITE_P(Threads, ThreadedOrdering, ::testing::Values(1, 2, 3, 4, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "t" + std::to_string(info.param);
                         });

// ---------- dispatch ----------

TEST(Dispatch, RoutesEveryKind) {
  const auto g = graph::barabasi_albert<std::uint32_t>(300, 3, 14);
  const auto degrees = g.degrees();
  for (const auto k : {OrderingKind::kIdentity, OrderingKind::kSelection,
                       OrderingKind::kStdSort, OrderingKind::kCounting,
                       OrderingKind::kParBuckets, OrderingKind::kParMax,
                       OrderingKind::kMultiLists}) {
    const auto order = compute_ordering(k, degrees);
    EXPECT_TRUE(is_permutation_of_vertices(order, degrees.size())) << to_string(k);
    if (k != OrderingKind::kIdentity && k != OrderingKind::kParBuckets) {
      EXPECT_TRUE(is_descending_degree_order(order, degrees)) << to_string(k);
    }
  }
}

TEST(Dispatch, IdentityIsIota) {
  const std::vector<VertexId> degrees{5, 1, 3};
  EXPECT_EQ(compute_ordering(OrderingKind::kIdentity, degrees),
            (Ordering{0, 1, 2}));
}

}  // namespace
