// Tests for METIS graph-file I/O.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"
#include "graph/io_metis.hpp"
#include "graph/ops.hpp"
#include "graph/validation.hpp"

namespace {

using namespace parapsp;
using namespace parapsp::graph;

class MetisTempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("parapsp_metis_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST(MetisParse, TinyUnweighted) {
  // The classic 7-vertex example from the METIS manual (shortened): a
  // triangle plus a pendant.
  const auto g = parse_metis<std::uint32_t>(
      "% tiny\n"
      "4 4\n"
      "2 3\n"
      "1 3\n"
      "1 2 4\n"
      "3\n");
  EXPECT_EQ(g.num_vertices(), 4u);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(2), 3u);
  EXPECT_TRUE(validate(g).ok());
}

TEST(MetisParse, WeightedFormat) {
  const auto g = parse_metis<std::uint32_t>(
      "3 2 1\n"
      "2 7\n"
      "1 7 3 4\n"
      "2 4\n");
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.weights(0)[0], 7u);
  EXPECT_EQ(g.weights(2)[0], 4u);
}

TEST(MetisParse, IsolatedVertexEmptyLine) {
  const auto g = parse_metis<std::uint32_t>("3 1\n2\n1\n\n");
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.degree(2), 0u);
}

TEST(MetisParse, Rejections) {
  EXPECT_THROW((void)parse_metis<std::uint32_t>(""), std::runtime_error);
  // Wrong edge count in header.
  EXPECT_THROW((void)parse_metis<std::uint32_t>("2 5\n2\n1\n"), std::runtime_error);
  // Neighbor id out of range.
  EXPECT_THROW((void)parse_metis<std::uint32_t>("2 1\n9\n1\n"), std::runtime_error);
  // Too many vertex lines.
  EXPECT_THROW((void)parse_metis<std::uint32_t>("1 0\n\n\n"), std::runtime_error);
  // Unsupported fmt (vertex weights).
  EXPECT_THROW((void)parse_metis<std::uint32_t>("2 1 10\n2\n1\n"), std::runtime_error);
  // Weighted line with odd token count.
  EXPECT_THROW((void)parse_metis<std::uint32_t>("2 1 1\n2 5\n1\n"), std::runtime_error);
}

TEST_F(MetisTempDir, RoundtripUnweighted) {
  const auto g = barabasi_albert<std::uint32_t>(60, 3, 12);
  save_metis(g, path("g.metis"));
  const auto g2 = load_metis<std::uint32_t>(path("g.metis"));
  EXPECT_EQ(g2.num_vertices(), g.num_vertices());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  EXPECT_EQ(g2.offsets(), g.offsets());
  EXPECT_EQ(g2.targets(), g.targets());
}

TEST_F(MetisTempDir, RoundtripWeighted) {
  auto g = erdos_renyi_gnm<std::uint32_t>(40, 90, 13);
  g = randomize_weights<std::uint32_t>(g, 2, 9, 14);
  save_metis(g, path("w.metis"));
  const auto g2 = load_metis<std::uint32_t>(path("w.metis"));
  EXPECT_EQ(g2.edge_weights(), g.edge_weights());
}

TEST_F(MetisTempDir, DirectedRejected) {
  const auto g = erdos_renyi_gnm<std::uint32_t>(10, 20, 15, Directedness::kDirected);
  EXPECT_THROW(save_metis(g, path("d.metis")), std::invalid_argument);
}

TEST_F(MetisTempDir, SelfLoopsDroppedOnSave) {
  GraphBuilder<std::uint32_t> b(Directedness::kUndirected);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const auto g = b.build(DuplicatePolicy::kKeepAll, SelfLoopPolicy::kKeep);
  save_metis(g, path("l.metis"));
  const auto g2 = load_metis<std::uint32_t>(path("l.metis"));
  EXPECT_EQ(g2.num_edges(), 1u);
  EXPECT_EQ(g2.num_self_loops(), 0u);
}

TEST_F(MetisTempDir, MissingFileThrows) {
  EXPECT_THROW((void)load_metis<std::uint32_t>(path("nope.metis")), std::runtime_error);
}

}  // namespace
