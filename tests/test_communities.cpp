// Tests for label-propagation communities, modularity, and harmonic
// centrality.
#include <gtest/gtest.h>

#include "analysis/communities.hpp"
#include "analysis/metrics.hpp"
#include "apsp/floyd_warshall.hpp"
#include "util/stats.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace parapsp;
using namespace parapsp::analysis;
using graph::Directedness;

graph::Graph<std::uint32_t> two_cliques_bridged(VertexId size) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kUndirected);
  for (VertexId u = 0; u < size; ++u) {
    for (VertexId v = u + 1; v < size; ++v) b.add_edge(u, v);
  }
  for (VertexId u = size; u < 2 * size; ++u) {
    for (VertexId v = u + 1; v < 2 * size; ++v) b.add_edge(u, v);
  }
  b.add_edge(0, size);  // single bridge
  return b.build();
}

TEST(LabelPropagation, SeparatesTwoCliques) {
  const auto g = two_cliques_bridged(8);
  const auto comms = label_propagation(g, 3);
  EXPECT_EQ(comms.count, 2u);
  for (VertexId v = 1; v < 8; ++v) EXPECT_EQ(comms.label[v], comms.label[0]);
  for (VertexId v = 9; v < 16; ++v) EXPECT_EQ(comms.label[v], comms.label[8]);
  EXPECT_NE(comms.label[0], comms.label[8]);
}

TEST(LabelPropagation, CliqueIsOneCommunity) {
  const auto comms = label_propagation(graph::complete_graph<std::uint32_t>(10), 4);
  EXPECT_EQ(comms.count, 1u);
}

TEST(LabelPropagation, IsolatedVerticesKeepOwnCommunities) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kUndirected, 5);
  b.add_edge(0, 1);
  const auto comms = label_propagation(b.build(), 5);
  // {0,1} merge; 2,3,4 remain singletons.
  EXPECT_EQ(comms.count, 4u);
  EXPECT_EQ(comms.label[0], comms.label[1]);
  const auto sizes = comms.sizes();
  EXPECT_EQ(*std::max_element(sizes.begin(), sizes.end()), 2u);
}

TEST(LabelPropagation, DeterministicInSeed) {
  const auto g = graph::barabasi_albert<std::uint32_t>(300, 3, 6);
  const auto a = label_propagation(g, 7);
  const auto b = label_propagation(g, 7);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.iterations, b.iterations);
}

TEST(LabelPropagation, EmptyGraph) {
  const graph::Graph<std::uint32_t> g;
  const auto comms = label_propagation(g);
  EXPECT_EQ(comms.count, 0u);
}

TEST(LabelPropagation, WeightedVotesDominate) {
  // Triangle 0-1-2 with heavy edges + vertex 3 tied to 0 by a heavier edge
  // than 3's tie to a far community: 3 follows the weight.
  graph::GraphBuilder<std::uint32_t> b(Directedness::kUndirected);
  b.add_edge(0, 1, 10);
  b.add_edge(1, 2, 10);
  b.add_edge(0, 2, 10);
  b.add_edge(4, 5, 10);
  b.add_edge(3, 0, 5);  // strong pull to the triangle
  b.add_edge(3, 4, 1);  // weak pull to the pair
  const auto comms = label_propagation(b.build(), 8);
  EXPECT_EQ(comms.label[3], comms.label[0]);
  EXPECT_NE(comms.label[3], comms.label[4]);
}

// ---------- modularity ----------

TEST(Modularity, GoodSplitBeatsTrivialSplits) {
  const auto g = two_cliques_bridged(8);
  const auto comms = label_propagation(g, 9);
  const double q_good = modularity(g, comms.label);

  std::vector<VertexId> all_one(g.num_vertices(), 0);
  const double q_one = modularity(g, all_one);

  std::vector<VertexId> singletons(g.num_vertices());
  std::iota(singletons.begin(), singletons.end(), VertexId{0});
  const double q_single = modularity(g, singletons);

  EXPECT_GT(q_good, q_one);
  EXPECT_GT(q_good, q_single);
  EXPECT_NEAR(q_one, 0.0, 1e-12);
  EXPECT_GT(q_good, 0.4);  // two near-disjoint cliques are strongly modular
}

TEST(Modularity, EdgelessGraphIsZero) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kUndirected, 4);
  EXPECT_DOUBLE_EQ(modularity(b.build(), {0, 0, 1, 1}), 0.0);
}

// ---------- harmonic centrality ----------

TEST(Harmonic, StarClosedForm) {
  const auto D = apsp::floyd_warshall(graph::star_graph<std::uint32_t>(6));
  const auto h = harmonic_centrality(D);
  EXPECT_DOUBLE_EQ(h[0], 5.0);                    // five leaves at distance 1
  EXPECT_NEAR(h[1], 1.0 + 4.0 * 0.5, 1e-12);      // hub at 1, four leaves at 2
}

TEST(Harmonic, DisconnectedContributesNothing) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kUndirected, 4);
  b.add_edge(0, 1);
  const auto D = apsp::floyd_warshall(b.build());
  const auto h = harmonic_centrality(D);
  EXPECT_DOUBLE_EQ(h[0], 1.0);
  EXPECT_DOUBLE_EQ(h[2], 0.0);
}

TEST(Harmonic, CorrelatesWithClosenessOnConnected) {
  // The two centralities rank near-identically on a connected graph; exact
  // top-1 agreement is not guaranteed, so check Pearson correlation.
  const auto g = graph::barabasi_albert<std::uint32_t>(200, 3, 10);
  const auto D = apsp::floyd_warshall(g);
  const auto h = harmonic_centrality(D);
  const auto c = closeness_centrality(D);
  const auto fit = util::linear_regression(c, h);
  EXPECT_GT(fit.r_squared, 0.8);
  EXPECT_GT(fit.slope, 0.0);
}

}  // namespace
