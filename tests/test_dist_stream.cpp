// Out-of-core streaming merge + cross-worker row broadcast
// (src/dist/supervisor.hpp --stream-merge, src/apsp/stream_io.hpp,
// src/dist/shard_streamer.hpp):
//
//   * the incremental row-stream writers build bit-identical .padm/.pack
//     artifacts from rows arriving in any order, atomically;
//   * a streamed supervised run never allocates the n x n matrix (proved by
//     running it under a matrix budget that makes the in-memory path fail)
//     yet its artifact is bit-identical to the in-memory merge, including
//     under injected worker crashes, torn writes, dropped acks, SIGKILL,
//     and full degradation;
//   * the RowPublish broadcast lane ships hub rows between workers without
//     perturbing exactness;
//   * workers can run a stepping substrate instead of the row-reuse kernel
//     and the merged matrix is still bit-identical.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "apsp/checkpoint.hpp"
#include "apsp/matrix_io.hpp"
#include "apsp/parallel.hpp"
#include "apsp/stream_io.hpp"
#include "check/oracle.hpp"
#include "dist/supervisor.hpp"
#include "dist/wire.hpp"
#include "graph/generators.hpp"
#include "test_helpers.hpp"
#include "util/status.hpp"

namespace {

using namespace parapsp;

// ---------- wire additions ----------

TEST(Wire, RowPublishRoundTrip) {
  dist::wire::RowPublishMsg in;
  in.source = 17;
  in.n = 4;
  in.row = {1, 0, 0, 0, 2, 0, 0, 0, 3, 0, 0, 0, 4, 0, 0, 0};
  const auto out = dist::wire::decode_row_publish(dist::wire::encode_row_publish(in));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->source, 17u);
  EXPECT_EQ(out->n, 4u);
  EXPECT_EQ(out->row, in.row);
}

TEST(Wire, ShardDoneCarriesWorkStats) {
  dist::wire::ShardDoneMsg in{9, 1000, 12, 5, 3};
  const auto out = dist::wire::decode_shard_done(dist::wire::encode_shard_done(in));
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->shard_id, 9u);
  EXPECT_EQ(out->edge_relaxations, 1000u);
  EXPECT_EQ(out->row_reuses, 12u);
  EXPECT_EQ(out->broadcast_reuses, 5u);
  EXPECT_EQ(out->broadcast_rows_applied, 3u);
}

TEST(Wire, BareShardDoneStillDecodes) {
  // A pre-stats ack is just the 8-byte shard id; decode must tolerate it
  // (mixed-version fleets) and default the work counters.
  std::vector<std::uint8_t> payload(8, 0);
  payload[0] = 42;
  const auto out = dist::wire::decode_shard_done(payload);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->shard_id, 42u);
  EXPECT_EQ(out->edge_relaxations, 0u);
  EXPECT_EQ(out->broadcast_rows_applied, 0u);
}

// ---------- incremental row-stream writers ----------

class StreamIo : public ::testing::Test {
 protected:
  static constexpr VertexId kN = 9;

  std::string path(const std::string& name) {
    return (std::filesystem::temp_directory_path() / name).string();
  }

  /// n rows of deterministic u32 payload, row s cell v = s * 100 + v.
  std::vector<std::uint32_t> row_of(VertexId s) {
    std::vector<std::uint32_t> r(kN);
    for (VertexId v = 0; v < kN; ++v) r[v] = s * 100 + v;
    return r;
  }

  util::Status stream_all(apsp::RowStreamWriter& w,
                          const std::vector<VertexId>& order) {
    for (const VertexId s : order) {
      const auto row = row_of(s);
      if (auto st = w.write_row(s, reinterpret_cast<const std::byte*>(row.data()));
          !st.is_ok()) {
        return st;
      }
    }
    return util::Status::ok();
  }
};

TEST_F(StreamIo, PadmStreamInShuffledOrderLoadsBack) {
  const auto p = path("parapsp_stream_padm.padm");
  auto w = apsp::open_row_stream(p, kN, graph::detail::weight_code<std::uint32_t>(),
                                 kN * sizeof(std::uint32_t), 0);
  ASSERT_TRUE(w.has_value()) << w.status().message();
  // Any arrival order must land at final offsets.
  ASSERT_TRUE(stream_all(**w, {4, 0, 8, 2, 6, 1, 7, 3, 5}).is_ok());
  EXPECT_EQ((*w)->rows_written(), kN);
  ASSERT_TRUE((*w)->finalize().is_ok());
  EXPECT_FALSE(std::filesystem::exists(p + ".tmp"));

  const auto D = apsp::load_matrix<std::uint32_t>(p);
  ASSERT_EQ(D.size(), kN);
  for (VertexId s = 0; s < kN; ++s) {
    for (VertexId v = 0; v < kN; ++v) EXPECT_EQ(D.row(s)[v], s * 100 + v);
  }
  std::filesystem::remove(p);
}

TEST_F(StreamIo, PackStreamIsALoadableCompleteCheckpoint) {
  const auto p = path("parapsp_stream_pack.pack");
  auto w = apsp::open_row_stream(p, kN, graph::detail::weight_code<std::uint32_t>(),
                                 kN * sizeof(std::uint32_t), 0xfeedbeef);
  ASSERT_TRUE(w.has_value()) << w.status().message();
  std::vector<VertexId> order(kN);
  for (VertexId s = 0; s < kN; ++s) order[s] = kN - 1 - s;  // reverse order
  ASSERT_TRUE(stream_all(**w, order).is_ok());
  ASSERT_TRUE((*w)->finalize().is_ok());

  const auto ck = apsp::load_checkpoint<std::uint32_t>(p);
  ASSERT_TRUE(ck.has_value()) << ck.status().message();
  EXPECT_EQ(ck->num_completed(), kN);
  EXPECT_EQ(ck->graph_fp, 0xfeedbeefu);
  for (VertexId s = 0; s < kN; ++s) {
    ASSERT_TRUE(ck->completed[s]);
    for (VertexId v = 0; v < kN; ++v) EXPECT_EQ(ck->distances.row(s)[v], s * 100 + v);
  }
  std::filesystem::remove(p);
}

TEST_F(StreamIo, DuplicateAndOutOfRangeRowsAreTypedErrors) {
  const auto p = path("parapsp_stream_dup.padm");
  auto w = apsp::open_row_stream(p, kN, graph::detail::weight_code<std::uint32_t>(),
                                 kN * sizeof(std::uint32_t), 0);
  ASSERT_TRUE(w.has_value());
  const auto row = row_of(3);
  const auto* bytes = reinterpret_cast<const std::byte*>(row.data());
  ASSERT_TRUE((*w)->write_row(3, bytes).is_ok());
  EXPECT_EQ((*w)->write_row(3, bytes).code(), util::ErrorCode::kInvalidArgument);
  EXPECT_EQ((*w)->write_row(kN, bytes).code(), util::ErrorCode::kInvalidArgument);
  (*w)->abort();
  EXPECT_FALSE(std::filesystem::exists(p + ".tmp"));
  EXPECT_FALSE(std::filesystem::exists(p));
}

TEST_F(StreamIo, ShortStreamCannotFinalizeAndLeavesNoArtifact) {
  const auto p = path("parapsp_stream_short.pack");
  auto w = apsp::open_row_stream(p, kN, graph::detail::weight_code<std::uint32_t>(),
                                 kN * sizeof(std::uint32_t), 0);
  ASSERT_TRUE(w.has_value());
  ASSERT_TRUE(stream_all(**w, {0, 1, 2}).is_ok());
  EXPECT_EQ((*w)->finalize().code(), util::ErrorCode::kFormat);
  // finalize() on a short stream aborts: tmp removed, final never created.
  EXPECT_FALSE(std::filesystem::exists(p + ".tmp"));
  EXPECT_FALSE(std::filesystem::exists(p));
}

// ---------- the streaming recovery contract ----------

class DistStream : public ::testing::Test {
 protected:
  void SetUp() override {
    g_ = graph::barabasi_albert<std::uint32_t>(120, 3, 417);
    reference_ = apsp::par_apsp(g_).distances;
  }

  dist::ProcOptions base_options(const std::string& tag) {
    dist::ProcOptions o;
    o.ranks = 3;
    o.shard_rows = 16;
    o.shard_dir =
        (std::filesystem::temp_directory_path() / ("parapsp_stream_" + tag)).string();
    o.stream_merge = true;
    o.stream_path = o.shard_dir + "/merged.padm";
    o.heartbeat_timeout_s = 1.0;
    o.lease_timeout_s = 5.0;
    return o;
  }

  /// Runs a streaming supervised run and asserts the contract: completion,
  /// no in-memory matrix, and the streamed artifact bit-identical to the
  /// single-process sweep via the differential oracle.
  dist::ProcDistResult<std::uint32_t> run_and_check(const dist::ProcOptions& o,
                                                    const std::string& label) {
    auto r = dist::supervise_apsp<std::uint32_t>(g_, o);
    EXPECT_TRUE(r.has_value()) << label << ": " << r.status().message();
    if (!r.has_value()) return {};
    EXPECT_TRUE(r->status.is_ok()) << label << ": " << r->status.message();
    EXPECT_TRUE(r->complete()) << label;
    if (o.stream_merge) {
      EXPECT_EQ(r->distances.size(), 0u) << label << ": streamed run held a matrix";
      EXPECT_EQ(r->stream.rows_streamed + /*degraded rows*/ 0,
                static_cast<std::uint64_t>(g_.num_vertices()))
          << label;
      const auto D = apsp::load_matrix<std::uint32_t>(o.stream_path);
      check::Provenance prov;
      prov.backend_a = "dist-stream[" + label + "]";
      prov.backend_b = "par_apsp";
      const auto diff = check::diff_matrices(D, reference_, prov);
      EXPECT_TRUE(diff.has_value()) << label << ": " << diff.status().message();
      if (diff.has_value()) {
        EXPECT_FALSE(diff->has_value()) << label << ": " << (*diff)->to_string();
      }
    }
    return std::move(*r);
  }

  graph::Graph<std::uint32_t> g_;
  apsp::DistanceMatrix<std::uint32_t> reference_;
};

TEST_F(DistStream, CleanStreamedRunIsBitIdentical) {
  const auto r = run_and_check(base_options("clean"), "clean");
  EXPECT_FALSE(r.degraded);
  EXPECT_TRUE(r.stream.enabled);
  EXPECT_EQ(r.stream.rows_streamed, 120u);
  EXPECT_EQ(r.stream.bytes_streamed, 120u * 120u * sizeof(std::uint32_t));
  // Every non-pivot row went through the SIMD tighten check.
  EXPECT_GT(r.stream.simd_checked_rows, 0u);
}

TEST_F(DistStream, PackArtifactIsBitIdenticalToo) {
  auto o = base_options("pack");
  o.stream_path = o.shard_dir + "/merged.pack";
  auto r = dist::supervise_apsp<std::uint32_t>(g_, o);
  ASSERT_TRUE(r.has_value()) << r.status().message();
  ASSERT_TRUE(r->complete());
  const auto ck = apsp::load_checkpoint<std::uint32_t>(o.stream_path);
  ASSERT_TRUE(ck.has_value()) << ck.status().message();
  EXPECT_EQ(ck->num_completed(), g_.num_vertices());
  EXPECT_EQ(ck->graph_fp, apsp::graph_fingerprint(g_));
  const auto diff = check::diff_matrices(ck->distances, reference_);
  ASSERT_TRUE(diff.has_value()) << diff.status().message();
  EXPECT_FALSE(diff->has_value());
}

TEST_F(DistStream, StreamingSucceedsUnderBudgetThatSinksInMemoryMerge) {
  // The budget proof: a matrix budget one row short of the full n x n
  // footprint makes the in-memory supervisor fail its up-front allocation,
  // while the streaming supervisor — which never allocates the matrix —
  // completes bit-identically under the same budget.
  const std::size_t full_bytes =
      apsp::DistanceMatrix<std::uint32_t>::padded_stride(g_.num_vertices()) *
      static_cast<std::size_t>(g_.num_vertices()) * sizeof(std::uint32_t);

  auto in_mem = base_options("budget_inmem");
  in_mem.stream_merge = false;
  in_mem.stream_path.clear();
  in_mem.matrix_budget_bytes = full_bytes - 1;
  EXPECT_EQ(dist::supervise_apsp<std::uint32_t>(g_, in_mem).status().code(),
            util::ErrorCode::kResource);

  auto streamed = base_options("budget_stream");
  streamed.matrix_budget_bytes = full_bytes - 1;
  const auto r = run_and_check(streamed, "budget_stream");
  EXPECT_FALSE(r.degraded);
}

TEST_F(DistStream, RowBroadcastKeepsStreamedRunBitIdentical) {
  auto o = base_options("broadcast");
  o.row_broadcast_budget = 48;  // the first 3 shards' worth of hub rows
  const auto r = run_and_check(o, "broadcast");
  EXPECT_FALSE(r.degraded);
  EXPECT_GT(r.stream.rows_broadcast, 0u);
  EXPECT_GT(r.stream.broadcast_bytes, 0u);
}

TEST_F(DistStream, RowBroadcastKeepsInMemoryRunBitIdentical) {
  // Broadcast is orthogonal to streaming: exercise it on the in-memory path.
  auto o = base_options("broadcast_inmem");
  o.stream_merge = false;
  o.stream_path.clear();
  o.row_broadcast_budget = 64;
  auto r = dist::supervise_apsp<std::uint32_t>(g_, o);
  ASSERT_TRUE(r.has_value()) << r.status().message();
  ASSERT_TRUE(r->complete());
  EXPECT_GT(r->stream.rows_broadcast, 0u);
  const auto diff = check::diff_matrices(r->distances, reference_);
  ASSERT_TRUE(diff.has_value()) << diff.status().message();
  EXPECT_FALSE(diff->has_value());
}

TEST_F(DistStream, SigkilledWorkerMidStreamIsRecovered) {
  auto o = base_options("sigkill");
  o.kill_worker_after_acks = 1;
  const auto r = run_and_check(o, "sigkill");
  EXPECT_EQ(r.faults.harness_kills, 1u);
  EXPECT_GT(r.faults.reassignments, 0u);
  EXPECT_FALSE(r.degraded);
}

#if defined(PARAPSP_FAILPOINTS_ENABLED)

TEST_F(DistStream, WorkerAbortMidStreamIsRecovered) {
  auto o = base_options("abort");
  o.inject_failpoints = "worker_abort@3";
  const auto r = run_and_check(o, "worker_abort");
  EXPECT_GT(r.faults.reassignments, 0u);
  EXPECT_FALSE(r.degraded);
}

TEST_F(DistStream, TornShardIsRejectedBeforeTheSink) {
  auto o = base_options("torn");
  // The prefetcher's CRC re-validation must reject the torn shard before a
  // single byte of it reaches the sink; the lease is recomputed.
  o.inject_failpoints = "shard_write_torn@2";
  const auto r = run_and_check(o, "shard_write_torn");
  EXPECT_GT(r.faults.torn_shards, 0u);
  EXPECT_GT(r.faults.retries, 0u);
  EXPECT_FALSE(r.degraded);
}

TEST_F(DistStream, DroppedAckMidStreamIsReclaimed) {
  auto o = base_options("drop_ack");
  o.inject_failpoints = "comm_drop_ack@1";
  const auto r = run_and_check(o, "comm_drop_ack");
  EXPECT_GT(r.faults.heartbeat_misses, 0u);
  EXPECT_FALSE(r.degraded);
}

TEST_F(DistStream, FullDegradationStillStreamsABitIdenticalArtifact) {
  auto o = base_options("degrade");
  // Fleet dies entirely; the degrade path must keep the streaming memory
  // bound (per-row Dijkstra straight into the sink) and stay bit-identical.
  o.inject_failpoints = "worker_abort";
  o.max_worker_restarts = 0;
  const auto r = run_and_check(o, "degrade");
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.fault.code(), util::ErrorCode::kUnavailable);
  EXPECT_GT(r.faults.degraded_shards, 0u);
}

#endif  // PARAPSP_FAILPOINTS_ENABLED

TEST_F(DistStream, SteppingSubstrateWorkersAreBitIdentical) {
  // Satellite: dist workers dispatch per-source runs through
  // sssp::run_substrate when armed with a substrate name.
  auto o = base_options("rho_worker");
  o.worker_substrate = sssp::Substrate::kRhoStepping;
  const auto r = run_and_check(o, "rho_worker");
  EXPECT_FALSE(r.degraded);
}

TEST(DistStreamOptions, StreamMergeRequiresAPath) {
  const auto g = graph::path_graph<std::uint32_t>(4);
  dist::ProcOptions o;
  o.shard_dir = "/tmp/parapsp_stream_opts";
  o.stream_merge = true;
  EXPECT_EQ(dist::supervise_apsp<std::uint32_t>(g, o).status().code(),
            util::ErrorCode::kInvalidArgument);
  o.stream_merge = false;
  o.row_broadcast_budget = -1;
  EXPECT_EQ(dist::supervise_apsp<std::uint32_t>(g, o).status().code(),
            util::ErrorCode::kInvalidArgument);
}

TEST(DistStreamOptions, EmptyGraphStreamsAnEmptyArtifact) {
  const graph::Graph<std::uint32_t> g;
  dist::ProcOptions o;
  o.shard_dir = "/tmp/parapsp_stream_empty";
  o.stream_merge = true;
  o.stream_path = "/tmp/parapsp_stream_empty/merged.padm";
  const auto r = dist::supervise_apsp<std::uint32_t>(g, o);
  ASSERT_TRUE(r.has_value()) << r.status().message();
  EXPECT_TRUE(r->complete());
  const auto D = apsp::load_matrix<std::uint32_t>(o.stream_path);
  EXPECT_EQ(D.size(), 0u);
}

}  // namespace
