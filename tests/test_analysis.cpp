// Tests for the analysis layer on graphs with closed-form answers.
#include <gtest/gtest.h>

#include "analysis/degree_distribution.hpp"
#include "analysis/metrics.hpp"
#include "apsp/floyd_warshall.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"

namespace {

using namespace parapsp;
using namespace parapsp::analysis;

template <typename G>
apsp::DistanceMatrix<std::uint32_t> distances(const G& g) {
  return apsp::floyd_warshall(g);
}

TEST(Metrics, PathGraphClosedForms) {
  const auto D = distances(graph::path_graph<std::uint32_t>(5));
  EXPECT_EQ(diameter(D), 4u);
  EXPECT_EQ(radius(D), 2u);
  const auto ecc = eccentricities(D);
  EXPECT_EQ(ecc, (std::vector<std::uint32_t>{4, 3, 2, 3, 4}));
  // Average path length of P5: sum over ordered pairs |i-j| / 20 = 2.
  EXPECT_DOUBLE_EQ(average_path_length(D), 2.0);
  EXPECT_EQ(reachable_pairs(D), 20u);
}

TEST(Metrics, CycleGraphClosedForms) {
  const auto D = distances(graph::cycle_graph<std::uint32_t>(6));
  EXPECT_EQ(diameter(D), 3u);
  EXPECT_EQ(radius(D), 3u);  // vertex-transitive: all eccentricities equal
  for (const auto e : eccentricities(D)) EXPECT_EQ(e, 3u);
}

TEST(Metrics, StarGraphClosedForms) {
  const auto D = distances(graph::star_graph<std::uint32_t>(8));
  EXPECT_EQ(diameter(D), 2u);
  EXPECT_EQ(radius(D), 1u);
  const auto cc = closeness_centrality(D);
  // Hub at distance 1 from all 7 leaves: closeness 7/7 = 1.
  EXPECT_DOUBLE_EQ(cc[0], 1.0);
  // Leaf: distances 1 + 2*6 = 13; closeness 7/13.
  EXPECT_NEAR(cc[1], 7.0 / 13.0, 1e-12);
  // Hub is strictly more central.
  for (VertexId v = 1; v < 8; ++v) EXPECT_GT(cc[0], cc[v]);
}

TEST(Metrics, CompleteGraphClosedForms) {
  const auto D = distances(graph::complete_graph<std::uint32_t>(6));
  EXPECT_EQ(diameter(D), 1u);
  EXPECT_EQ(radius(D), 1u);
  EXPECT_DOUBLE_EQ(average_path_length(D), 1.0);
  for (const auto c : closeness_centrality(D)) EXPECT_DOUBLE_EQ(c, 1.0);
}

TEST(Metrics, GridGraphDiameter) {
  const auto D = distances(graph::grid_graph<std::uint32_t>(3, 4));
  EXPECT_EQ(diameter(D), 2u + 3u);  // Manhattan across corners
}

TEST(Metrics, DisconnectedConventions) {
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kUndirected, 5);
  b.add_edge(0, 1);
  b.add_edge(2, 3);  // vertex 4 isolated
  const auto D = distances(b.build());
  EXPECT_EQ(diameter(D), 1u);
  EXPECT_EQ(radius(D), 1u);
  EXPECT_EQ(reachable_pairs(D), 4u);
  EXPECT_DOUBLE_EQ(average_path_length(D), 1.0);
  const auto cc = closeness_centrality(D);
  EXPECT_DOUBLE_EQ(cc[4], 0.0) << "isolated vertex has zero closeness";
  // Wasserman-Faust: component size 2 -> (1/4) * (1/1).
  EXPECT_NEAR(cc[0], 0.25, 1e-12);
}

TEST(Metrics, EmptyAndSingleton) {
  const apsp::DistanceMatrix<std::uint32_t> empty(0);
  EXPECT_EQ(diameter(empty), 0u);
  EXPECT_EQ(radius(empty), 0u);
  EXPECT_DOUBLE_EQ(average_path_length(empty), 0.0);

  apsp::DistanceMatrix<std::uint32_t> one(1);
  one.at(0, 0) = 0;
  EXPECT_EQ(diameter(one), 0u);
  EXPECT_TRUE(closeness_centrality(one).at(0) == 0.0);
}

TEST(Metrics, DistanceHistogram) {
  const auto D = distances(graph::path_graph<std::uint32_t>(4));
  const auto hist = distance_histogram(D);
  // P4 ordered pairs: d=1 x6, d=2 x4, d=3 x2.
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 0u);
  EXPECT_EQ(hist[1], 6u);
  EXPECT_EQ(hist[2], 4u);
  EXPECT_EQ(hist[3], 2u);
}

TEST(Metrics, DirectedAsymmetry) {
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kDirected, 3);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  const auto D = distances(b.build());
  EXPECT_EQ(diameter(D), 2u);       // 0 -> 2
  EXPECT_EQ(reachable_pairs(D), 3u);  // (0,1),(0,2),(1,2)
  const auto ecc = eccentricities(D);
  EXPECT_EQ(ecc[0], 2u);
  EXPECT_EQ(ecc[2], 0u);  // sink reaches nothing
}

// ---------- degree distribution ----------

TEST(DegreeDist, StarShape) {
  const auto g = graph::star_graph<std::uint32_t>(10);
  const auto dist = degree_distribution(g);
  EXPECT_EQ(dist.min_degree, 1u);
  EXPECT_EQ(dist.max_degree, 9u);
  EXPECT_NEAR(dist.mean_degree, 18.0 / 10.0, 1e-12);
  ASSERT_EQ(dist.points.size(), 2u);
  EXPECT_EQ(dist.points[0].degree, 1u);
  EXPECT_EQ(dist.points[0].count, 9u);
  EXPECT_EQ(dist.points[1].degree, 9u);
  EXPECT_EQ(dist.points[1].count, 1u);
}

TEST(DegreeDist, FractionBelow) {
  const auto g = graph::star_graph<std::uint32_t>(10);
  const auto dist = degree_distribution(g);
  EXPECT_DOUBLE_EQ(dist.fraction_below(2), 0.9);
  EXPECT_DOUBLE_EQ(dist.fraction_below(100), 1.0);
  EXPECT_DOUBLE_EQ(dist.fraction_below(0), 0.0);
}

TEST(DegreeDist, EmptyGraph) {
  const std::vector<VertexId> none;
  const auto dist = degree_distribution(none);
  EXPECT_TRUE(dist.points.empty());
  EXPECT_DOUBLE_EQ(dist.fraction_below(5), 0.0);
}

TEST(DegreeDist, BaGraphIsSkewedLikeThePaper) {
  // Section 4.2's premise on our WordNet stand-in: the overwhelming majority
  // of vertices sit in the lowest degrees (this is what causes ParBuckets'
  // lock contention and justifies ParMax's 1% threshold).
  const auto g = graph::barabasi_albert<std::uint32_t>(20000, 2, 77);
  const auto dist = degree_distribution(g);
  const auto threshold = static_cast<VertexId>(
      std::max<VertexId>(1, static_cast<VertexId>(0.01 * dist.max_degree)));
  EXPECT_GT(dist.fraction_below(threshold), 0.45);
  EXPECT_GT(dist.fraction_below(static_cast<VertexId>(0.1 * dist.max_degree)), 0.95);
}

}  // namespace
