// Tests for strongly connected components, hop/distance-bounded APSP, and
// the linear-regression helper.
#include <gtest/gtest.h>

#include "apsp/bounded.hpp"
#include "apsp/floyd_warshall.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/scc.hpp"
#include "test_helpers.hpp"
#include "util/stats.hpp"

namespace {

using namespace parapsp;
using graph::Directedness;
using graph::strongly_connected_components;

// ---------- SCC ----------

TEST(Scc, SingleCycleIsOneComponent) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kDirected);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  const auto scc = strongly_connected_components(b.build());
  EXPECT_EQ(scc.count, 1u);
}

TEST(Scc, DagIsAllSingletons) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kDirected);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  const auto scc = strongly_connected_components(b.build());
  EXPECT_EQ(scc.count, 4u);
  // Reverse-topological labels: an arc A -> B across components implies
  // label(A) > label(B).
  const auto g = b.build();
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const VertexId v : g.neighbors(u)) {
      if (scc.label[u] != scc.label[v]) EXPECT_GT(scc.label[u], scc.label[v]);
    }
  }
}

TEST(Scc, TwoCyclesLinkedByArc) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kDirected);
  b.add_edge(0, 1);
  b.add_edge(1, 0);  // SCC A
  b.add_edge(2, 3);
  b.add_edge(3, 2);  // SCC B
  b.add_edge(1, 2);  // A -> B
  const auto scc = strongly_connected_components(b.build());
  EXPECT_EQ(scc.count, 2u);
  EXPECT_EQ(scc.label[0], scc.label[1]);
  EXPECT_EQ(scc.label[2], scc.label[3]);
  EXPECT_GT(scc.label[0], scc.label[2]);  // reverse topological
}

TEST(Scc, UndirectedEqualsConnectedComponents) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kUndirected, 7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(4, 5);
  const auto scc = strongly_connected_components(b.build());
  const auto cc = graph::connected_components(b.build());
  EXPECT_EQ(scc.count, cc.count);
  for (VertexId u = 0; u < 7; ++u) {
    for (VertexId v = 0; v < 7; ++v) {
      EXPECT_EQ(scc.label[u] == scc.label[v], cc.label[u] == cc.label[v]);
    }
  }
}

TEST(Scc, AgreesWithMutualReachability) {
  // Property: u, v share an SCC iff d(u,v) and d(v,u) are both finite.
  const auto g = graph::rmat<std::uint32_t>(6, 200, 51);
  const auto scc = strongly_connected_components(g);
  const auto D = apsp::floyd_warshall(g);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const bool mutual = !is_infinite(D.at(u, v)) && !is_infinite(D.at(v, u));
      EXPECT_EQ(scc.label[u] == scc.label[v], mutual) << u << "," << v;
    }
  }
}

TEST(Scc, DeepPathNoStackOverflow) {
  // 200k-vertex directed path: a recursive Tarjan would blow the stack.
  graph::GraphBuilder<std::uint32_t> b(Directedness::kDirected);
  const VertexId n = 200000;
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  const auto scc = strongly_connected_components(b.build());
  EXPECT_EQ(scc.count, n);
}

TEST(Scc, LargestSccExtraction) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kDirected);
  for (VertexId v = 0; v < 5; ++v) b.add_edge(v, (v + 1) % 5);  // 5-cycle
  b.add_edge(0, 5);
  b.add_edge(5, 6);  // tail
  const auto core = graph::largest_scc(b.build());
  EXPECT_EQ(core.num_vertices(), 5u);
  EXPECT_EQ(core.num_edges(), 5u);
}

// ---------- bounded APSP ----------

TEST(BoundedApsp, MatchesTruncatedFloydWarshall) {
  const auto g = parapsp::testing::make_graph(
      {"er_w", parapsp::testing::GraphCase::Family::kER, 80, 250,
       Directedness::kUndirected, true, 52});
  const auto full = apsp::floyd_warshall(g);
  for (const std::uint32_t limit : {0u, 5u, 20u, 1000u}) {
    const auto bounded = apsp::bounded_apsp(g, limit);
    for (VertexId u = 0; u < g.num_vertices(); ++u) {
      for (VertexId v = 0; v < g.num_vertices(); ++v) {
        const auto want = (!is_infinite(full.at(u, v)) && full.at(u, v) <= limit)
                              ? full.at(u, v)
                              : infinity<std::uint32_t>();
        ASSERT_EQ(bounded.at(u, v), want) << "limit=" << limit << " " << u << "," << v;
      }
    }
  }
}

TEST(BoundedApsp, ZeroLimitIsDiagonalOnly) {
  const auto g = graph::cycle_graph<std::uint32_t>(6);
  const auto D = apsp::bounded_apsp(g, 0u);
  for (VertexId u = 0; u < 6; ++u) {
    for (VertexId v = 0; v < 6; ++v) {
      if (u == v) {
        EXPECT_EQ(D.at(u, v), 0u);
      } else {
        EXPECT_TRUE(is_infinite(D.at(u, v)));
      }
    }
  }
}

TEST(BoundedApsp, BallSizesOnPath) {
  const auto g = graph::path_graph<std::uint32_t>(7);
  const auto balls = apsp::ball_sizes(g, 2u);
  // Middle vertex reaches 2 left + 2 right + itself.
  EXPECT_EQ(balls[3], 5u);
  EXPECT_EQ(balls[0], 3u);  // itself + two to the right
}

TEST(BoundedApsp, BallsGrowWithLimit) {
  const auto g = graph::barabasi_albert<std::uint32_t>(200, 3, 53);
  const auto b1 = apsp::ball_sizes(g, 1u);
  const auto b2 = apsp::ball_sizes(g, 2u);
  for (VertexId v = 0; v < 200; ++v) {
    EXPECT_LE(b1[v], b2[v]);
    EXPECT_EQ(b1[v], static_cast<std::uint64_t>(g.degree(v)) + 1);
  }
}

// ---------- linear regression ----------

TEST(LinearRegression, ExactLine) {
  const std::vector<double> x{1, 2, 3, 4};
  const std::vector<double> y{3, 5, 7, 9};  // y = 2x + 1
  const auto fit = util::linear_regression(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearRegression, NoisyLine) {
  util::Xoshiro256 rng(54);
  std::vector<double> x, y;
  for (int i = 0; i < 1000; ++i) {
    const double xi = static_cast<double>(i) / 100.0;
    x.push_back(xi);
    y.push_back(3.0 * xi - 2.0 + (rng.uniform() - 0.5) * 0.1);
  }
  const auto fit = util::linear_regression(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 0.02);
  EXPECT_NEAR(fit.intercept, -2.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LinearRegression, DegenerateInputs) {
  EXPECT_EQ(util::linear_regression({}, {}).slope, 0.0);
  EXPECT_EQ(util::linear_regression({1.0}, {2.0}).slope, 0.0);
  // Zero x-variance.
  EXPECT_EQ(util::linear_regression({2.0, 2.0}, {1.0, 5.0}).slope, 0.0);
  // Constant y: slope 0, perfect fit.
  const auto fit = util::linear_regression({1.0, 2.0, 3.0}, {4.0, 4.0, 4.0});
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_EQ(fit.r_squared, 1.0);
}

TEST(LinearRegression, RecoversComplexityExponent) {
  // y = c * n^2.4 -> log-log slope 2.4.
  std::vector<double> log_n, log_t;
  for (const double n : {100.0, 200.0, 400.0, 800.0}) {
    log_n.push_back(std::log(n));
    log_t.push_back(std::log(3e-9 * std::pow(n, 2.4)));
  }
  const auto fit = util::linear_regression(log_n, log_t);
  EXPECT_NEAR(fit.slope, 2.4, 1e-9);
}

}  // namespace
