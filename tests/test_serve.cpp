// Tests for the serving layer (src/serve/): ShardStore integrity checks
// (CRC, truncation, type/fingerprint mismatches), generation selection and
// hot reload (including a swap under an in-flight batch), QueryEngine
// fallback/budget/deadline behavior, the Service facade's three entry
// points, concurrent reader/reload stress (the TSan target), and the eager
// validation satellites (Runner::validate, peek_checkpoint, resume guard).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "test_helpers.hpp"

namespace {

using namespace parapsp;
namespace fs = std::filesystem;
using Weight = std::uint32_t;

// ---------- fixtures ----------

graph::Graph<Weight> test_graph(std::uint64_t seed = 31) {
  return parapsp::testing::make_graph({"serve_ba",
                                       parapsp::testing::GraphCase::Family::kBA, 120, 3,
                                       graph::Directedness::kUndirected, true, seed});
}

/// Fresh per-test scratch directory under the gtest temp root.
fs::path scratch_dir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / ("serve_" + name);
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir;
}

/// Writes the rows of `D` selected by `keep` as a v2 ".pack" shard file.
void write_shard(const fs::path& path, const apsp::DistanceMatrix<Weight>& D,
                 std::uint64_t fp, const std::vector<std::uint8_t>& keep) {
  ASSERT_TRUE(apsp::save_checkpoint(path.string(), D, keep, fp).is_ok());
}

std::vector<std::uint8_t> all_rows(VertexId n) {
  return std::vector<std::uint8_t>(n, 1);
}

/// completed[s] = 1 for even s, 0 for odd s.
std::vector<std::uint8_t> even_rows(VertexId n) {
  std::vector<std::uint8_t> keep(n, 0);
  for (VertexId s = 0; s < n; s += 2) keep[s] = 1;
  return keep;
}

void flip_byte(const fs::path& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0xff);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

/// Byte offset where the packed rows of a full v2 checkpoint for n start.
std::uint64_t rows_offset(VertexId n, VertexId completed) {
  const std::uint64_t words = (static_cast<std::uint64_t>(n) + 63) / 64;
  return 32 + words * 8 + static_cast<std::uint64_t>(completed) * 4;
}

// ---------- ShardStore: integrity at open ----------

TEST(ShardStore, ServesCheckpointShardsBitIdenticalToOracle) {
  const auto g = test_graph();
  const auto want = apsp::floyd_warshall(g);
  const auto fp = apsp::graph_fingerprint(g);
  const auto dir = scratch_dir("oracle");
  // Two shards with complementary rows; the store merges them.
  auto even = even_rows(g.num_vertices());
  auto odd = all_rows(g.num_vertices());
  for (VertexId s = 0; s < g.num_vertices(); ++s) odd[s] = !even[s];
  write_shard(dir / "shard_0.pack", want, fp, even);
  write_shard(dir / "shard_1.pack", want, fp, odd);

  auto store = serve::ShardStore<Weight>::open_dir(dir.string());
  ASSERT_TRUE(store.has_value()) << store.status().to_string();
  const auto snap = (*store)->snapshot();
  EXPECT_EQ(snap->n, g.num_vertices());
  EXPECT_EQ(snap->rows_present, g.num_vertices());
  EXPECT_EQ(snap->graph_fp, fp);
  for (VertexId s = 0; s < snap->n; ++s) {
    ASSERT_TRUE(snap->has_row(s));
    for (VertexId t = 0; t < snap->n; ++t) {
      ASSERT_EQ(snap->row(s)[t], want.at(s, t)) << "(" << s << "," << t << ")";
    }
  }
}

TEST(ShardStore, RejectsCorruptRowCrc) {
  const auto g = test_graph();
  const auto D = apsp::floyd_warshall(g);
  const auto dir = scratch_dir("crc");
  write_shard(dir / "shard_0.pack", D, 1, all_rows(g.num_vertices()));
  // Flip one byte in the middle of the packed row payload.
  flip_byte(dir / "shard_0.pack",
            rows_offset(g.num_vertices(), g.num_vertices()) + 4097);

  const auto store = serve::ShardStore<Weight>::open_dir(dir.string());
  ASSERT_FALSE(store.has_value());
  EXPECT_EQ(store.status().code(), util::ErrorCode::kFormat);
  EXPECT_NE(store.status().message().find("CRC"), std::string::npos)
      << store.status().message();
}

TEST(ShardStore, RejectsCorruptBitmap) {
  const auto g = test_graph();
  const auto D = apsp::floyd_warshall(g);
  const auto dir = scratch_dir("bitmap");
  write_shard(dir / "shard_0.pack", D, 1, all_rows(g.num_vertices()));
  flip_byte(dir / "shard_0.pack", 32);  // first bitmap word

  const auto store = serve::ShardStore<Weight>::open_dir(dir.string());
  ASSERT_FALSE(store.has_value());
  EXPECT_EQ(store.status().code(), util::ErrorCode::kFormat);
}

TEST(ShardStore, RejectsTruncatedPayload) {
  const auto g = test_graph();
  const auto D = apsp::floyd_warshall(g);
  const auto dir = scratch_dir("trunc");
  write_shard(dir / "shard_0.pack", D, 1, all_rows(g.num_vertices()));
  // Keep the header, bitmap, CRC table and one row; drop the rest.
  fs::resize_file(dir / "shard_0.pack",
                  rows_offset(g.num_vertices(), g.num_vertices()) +
                      static_cast<std::uint64_t>(g.num_vertices()) * sizeof(Weight));

  const auto store = serve::ShardStore<Weight>::open_dir(dir.string());
  ASSERT_FALSE(store.has_value());
  EXPECT_EQ(store.status().code(), util::ErrorCode::kFormat);
  EXPECT_NE(store.status().message().find("truncated"), std::string::npos);
}

TEST(ShardStore, RejectsWeightTypeMismatch) {
  const auto g = test_graph();
  const auto D = apsp::floyd_warshall(g);
  const auto dir = scratch_dir("wtype");
  write_shard(dir / "shard_0.pack", D, 1, all_rows(g.num_vertices()));

  const auto store = serve::ShardStore<double>::open_dir(dir.string());
  ASSERT_FALSE(store.has_value());
  EXPECT_EQ(store.status().code(), util::ErrorCode::kFormat);
}

TEST(ShardStore, RejectsFingerprintDisagreementAcrossShards) {
  const auto g = test_graph();
  const auto D = apsp::floyd_warshall(g);
  const auto n = g.num_vertices();
  const auto dir = scratch_dir("fpmix");
  auto odd = all_rows(n);
  const auto even = even_rows(n);
  for (VertexId s = 0; s < n; ++s) odd[s] = !even[s];
  write_shard(dir / "shard_0.pack", D, 1111, even);
  write_shard(dir / "shard_1.pack", D, 2222, odd);

  const auto store = serve::ShardStore<Weight>::open_dir(dir.string());
  ASSERT_FALSE(store.has_value());
  EXPECT_EQ(store.status().code(), util::ErrorCode::kFormat);
  EXPECT_NE(store.status().message().find("fingerprint"), std::string::npos);
}

TEST(ShardStore, SkipsManifestAndForeignFiles) {
  const auto g = test_graph();
  const auto D = apsp::floyd_warshall(g);
  const auto dir = scratch_dir("manifest");
  write_shard(dir / "shard_0.pack", D, 1, all_rows(g.num_vertices()));
  std::ofstream(dir / "MANIFEST") << "format=parapsp-shard-dir\nn=120\n";
  std::ofstream(dir / "notes.txt") << "not a shard\n";

  const auto store = serve::ShardStore<Weight>::open_dir(dir.string());
  ASSERT_TRUE(store.has_value()) << store.status().to_string();
  EXPECT_EQ((*store)->snapshot()->rows_present, g.num_vertices());
}

// ---------- generations and hot reload ----------

TEST(ShardStore, HighestLoadableGenerationWins) {
  // gen-1 and gen-2 hold matrices of *different* graphs (same n), so the
  // served values tell us which generation won.
  const auto g1 = test_graph(31);
  const auto g2 = test_graph(77);
  ASSERT_EQ(g1.num_vertices(), g2.num_vertices());
  const auto D1 = apsp::floyd_warshall(g1);
  const auto D2 = apsp::floyd_warshall(g2);
  const auto dir = scratch_dir("gens");
  fs::create_directories(dir / "gen-1");
  fs::create_directories(dir / "gen-2");
  apsp::save_matrix(D1, (dir / "gen-1" / "dist.padm").string());
  apsp::save_matrix(D2, (dir / "gen-2" / "dist.padm").string());

  auto store = serve::ShardStore<Weight>::open_dir(dir.string());
  ASSERT_TRUE(store.has_value()) << store.status().to_string();
  auto snap = (*store)->snapshot();
  EXPECT_EQ(snap->generation, 2u);
  EXPECT_EQ(snap->row(0)[1], D2.at(0, 1));

  // Corrupt gen-2's magic: open falls back to the next loadable generation.
  flip_byte(dir / "gen-2" / "dist.padm", 0);
  store = serve::ShardStore<Weight>::open_dir(dir.string());
  ASSERT_TRUE(store.has_value()) << store.status().to_string();
  snap = (*store)->snapshot();
  EXPECT_EQ(snap->generation, 1u);
  EXPECT_EQ(snap->row(0)[1], D1.at(0, 1));
}

TEST(ShardStore, ReloadSwapsGenerationWhileOldSnapshotStaysValid) {
  const auto g = test_graph();
  const auto D = apsp::floyd_warshall(g);
  const auto fp = apsp::graph_fingerprint(g);
  const auto dir = scratch_dir("reload");
  fs::create_directories(dir / "gen-1");
  write_shard(dir / "gen-1" / "shard_0.pack", D, fp, all_rows(g.num_vertices()));

  auto store_x = serve::ShardStore<Weight>::open_dir(dir.string());
  ASSERT_TRUE(store_x.has_value());
  auto& store = *store_x;
  const auto held = store->snapshot();  // an "in-flight batch" keeps this alive
  EXPECT_EQ(held->generation, 1u);

  fs::create_directories(dir / "gen-2");
  write_shard(dir / "gen-2" / "shard_0.pack", D, fp, all_rows(g.num_vertices()));
  ASSERT_TRUE(store->reload().is_ok());
  EXPECT_EQ(store->snapshot()->generation, 2u);

  // The held (pre-reload) snapshot still serves its rows, byte for byte.
  EXPECT_EQ(held->generation, 1u);
  for (VertexId t = 0; t < held->n; ++t) {
    ASSERT_EQ(held->row(5)[t], D.at(5, t));
  }
}

TEST(ShardStore, FailedReloadKeepsServingOldGeneration) {
  const auto g = test_graph();
  const auto D = apsp::floyd_warshall(g);
  const auto dir = scratch_dir("reload_fail");
  write_shard(dir / "shard_0.pack", D, 1, all_rows(g.num_vertices()));

  auto store_x = serve::ShardStore<Weight>::open_dir(dir.string());
  ASSERT_TRUE(store_x.has_value());
  auto& store = *store_x;
  flip_byte(dir / "shard_0.pack",
            rows_offset(g.num_vertices(), g.num_vertices()) + 64);

  const auto st = store->reload();
  EXPECT_FALSE(st.is_ok());
  EXPECT_EQ(st.code(), util::ErrorCode::kFormat);
  const auto snap = store->snapshot();  // old snapshot, still intact
  ASSERT_EQ(snap->rows_present, g.num_vertices());
  EXPECT_EQ(snap->row(3)[7], D.at(3, 7));
}

// ---------- QueryEngine: fallback, budget, deadlines ----------

TEST(QueryEngine, FallbackRowsAreBitIdenticalToOracle) {
  const auto g = test_graph();
  const auto want = apsp::floyd_warshall(g);
  const auto n = g.num_vertices();
  const auto dir = scratch_dir("fallback");
  write_shard(dir / "shard_0.pack", want, apsp::graph_fingerprint(g), even_rows(n));

  auto svc_x = serve::Service<Weight>::open_shard_dir(dir.string());
  ASSERT_TRUE(svc_x.has_value()) << svc_x.status().to_string();
  auto& svc = *svc_x;
  ASSERT_TRUE(svc.attach_graph(g).is_ok());

  std::vector<serve::Service<Weight>::Pair> pairs;
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; t += 7) pairs.emplace_back(s, t);
  }
  std::vector<Weight> out(pairs.size());
  ASSERT_TRUE(svc.distances(pairs, out).is_ok());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    ASSERT_EQ(out[i], want.at(pairs[i].first, pairs[i].second))
        << "(" << pairs[i].first << "," << pairs[i].second << ")";
  }
  const auto stats = svc.stats();
  EXPECT_EQ(stats.queries, pairs.size());
  EXPECT_EQ(stats.fallback_rows, n / 2);  // each odd row computed exactly once
  EXPECT_LT(stats.hit_rate(), 1.0);
  EXPECT_GT(stats.hit_rate(), 0.0);
}

TEST(QueryEngine, MissWithoutGraphIsUnavailable) {
  const auto g = test_graph();
  const auto D = apsp::floyd_warshall(g);
  const auto dir = scratch_dir("nograph");
  write_shard(dir / "shard_0.pack", D, 1, even_rows(g.num_vertices()));

  auto svc = serve::Service<Weight>::open_shard_dir(dir.string());
  ASSERT_TRUE(svc.has_value());
  EXPECT_EQ(svc->distance(0, 1).status().code(), util::ErrorCode::kOk);
  const auto miss = svc->distance(1, 0);  // odd row, no fallback possible
  ASSERT_FALSE(miss.has_value());
  EXPECT_EQ(miss.status().code(), util::ErrorCode::kUnavailable);
}

TEST(QueryEngine, FallbackAdmissionBudgetIsEnforced) {
  const auto g = test_graph();
  const auto D = apsp::floyd_warshall(g);
  const auto dir = scratch_dir("budget");
  write_shard(dir / "shard_0.pack", D, apsp::graph_fingerprint(g),
              even_rows(g.num_vertices()));

  serve::EngineOptions eopts;
  eopts.max_fallback_rows = 1;
  auto svc = serve::Service<Weight>::open_shard_dir(dir.string(), eopts);
  ASSERT_TRUE(svc.has_value());
  ASSERT_TRUE(svc->attach_graph(g).is_ok());

  ASSERT_TRUE(svc->distance(1, 0).has_value());   // first miss: within budget
  ASSERT_TRUE(svc->distance(1, 5).has_value());   // cached, costs no budget
  const auto over = svc->distance(3, 0);          // second distinct row: over
  ASSERT_FALSE(over.has_value());
  EXPECT_EQ(over.status().code(), util::ErrorCode::kUnavailable);
  EXPECT_NE(over.status().message().find("budget"), std::string::npos);
  EXPECT_EQ(svc->stats().fallback_rows, 1u);
}

TEST(QueryEngine, ZeroBudgetDisablesFallback) {
  const auto g = test_graph();
  const auto D = apsp::floyd_warshall(g);
  const auto dir = scratch_dir("budget0");
  write_shard(dir / "shard_0.pack", D, apsp::graph_fingerprint(g),
              even_rows(g.num_vertices()));

  serve::EngineOptions eopts;
  eopts.max_fallback_rows = 0;
  auto svc = serve::Service<Weight>::open_shard_dir(dir.string(), eopts);
  ASSERT_TRUE(svc.has_value());
  ASSERT_TRUE(svc->attach_graph(g).is_ok());
  EXPECT_EQ(svc->distance(1, 0).status().code(), util::ErrorCode::kUnavailable);
}

TEST(QueryEngine, CancelledBatchCountsAsDeadlineMiss) {
  const auto g = test_graph();
  auto svc = serve::Service<Weight>::compute(g);
  ASSERT_TRUE(svc.has_value()) << svc.status().to_string();

  util::ExecutionControl ctl;
  ctl.request_cancel();
  serve::QueryOptions q;
  q.control = &ctl;
  const auto d = svc->distance(0, 1, q);
  ASSERT_FALSE(d.has_value());
  EXPECT_EQ(d.status().code(), util::ErrorCode::kCancelled);
  EXPECT_EQ(svc->stats().deadline_misses, 1u);
}

TEST(QueryEngine, ExpiredCallerDeadlineIsTimeout) {
  const auto g = test_graph();
  auto svc = serve::Service<Weight>::compute(g);
  ASSERT_TRUE(svc.has_value());

  util::ExecutionControl ctl;
  ctl.set_deadline_after(-1.0);  // already expired, deterministically
  serve::QueryOptions q;
  q.control = &ctl;
  const auto d = svc->distance(0, 1, q);
  ASSERT_FALSE(d.has_value());
  EXPECT_EQ(d.status().code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(svc->stats().deadline_misses, 1u);
}

TEST(QueryEngine, OutOfRangeQueryIsInvalidArgument) {
  const auto g = test_graph();
  auto svc = serve::Service<Weight>::compute(g);
  ASSERT_TRUE(svc.has_value());
  EXPECT_EQ(svc->distance(g.num_vertices(), 0).status().code(),
            util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(svc->distance(0, g.num_vertices()).status().code(),
            util::ErrorCode::kInvalidArgument);
  std::vector<Weight> out(1);
  const std::vector<VertexId> bad{g.num_vertices()};
  EXPECT_EQ(svc->one_to_many(0, bad, out).code(), util::ErrorCode::kInvalidArgument);
}

TEST(QueryEngine, OneToManyMatchesPointQueries) {
  const auto g = test_graph();
  const auto want = apsp::floyd_warshall(g);
  auto svc = serve::Service<Weight>::compute(g);
  ASSERT_TRUE(svc.has_value());

  std::vector<VertexId> targets;
  for (VertexId t = 0; t < g.num_vertices(); t += 3) targets.push_back(t);
  std::vector<Weight> out(targets.size());
  ASSERT_TRUE(svc->one_to_many(9, targets, out).is_ok());
  for (std::size_t i = 0; i < targets.size(); ++i) {
    EXPECT_EQ(out[i], want.at(9, targets[i]));
  }
}

// ---------- Service facade ----------

TEST(Service, ThreeEntryPointsServeIdenticalDistances) {
  const auto g = test_graph();
  const auto fp = apsp::graph_fingerprint(g);
  const auto dir = scratch_dir("facade");

  auto computed = serve::Service<Weight>::compute(g);
  ASSERT_TRUE(computed.has_value()) << computed.status().to_string();
  ASSERT_TRUE(computed->solve_info().status.is_ok());

  const auto matrix_path = (dir / "dist.padm").string();
  ASSERT_TRUE(computed->export_matrix(matrix_path).is_ok());
  auto from_matrix = serve::Service<Weight>::open_matrix(matrix_path);
  ASSERT_TRUE(from_matrix.has_value()) << from_matrix.status().to_string();

  const auto D = apsp::floyd_warshall(g);
  write_shard(dir / "shard_0.pack", D, fp, all_rows(g.num_vertices()));
  auto from_shards = serve::Service<Weight>::open_shard_dir(dir.string());
  ASSERT_TRUE(from_shards.has_value()) << from_shards.status().to_string();

  for (VertexId s = 0; s < g.num_vertices(); s += 11) {
    for (VertexId t = 0; t < g.num_vertices(); t += 13) {
      const auto a = computed->distance(s, t);
      const auto b = from_matrix->distance(s, t);
      const auto c = from_shards->distance(s, t);
      ASSERT_TRUE(a.has_value() && b.has_value() && c.has_value());
      EXPECT_EQ(*a, *b) << "(" << s << "," << t << ")";
      EXPECT_EQ(*a, *c) << "(" << s << "," << t << ")";
    }
  }
}

TEST(Service, AttachGraphRejectsMismatchedGraph) {
  const auto g = test_graph(31);
  const auto other = test_graph(99);  // same n, different edges
  const auto D = apsp::floyd_warshall(g);
  const auto dir = scratch_dir("attach");
  write_shard(dir / "shard_0.pack", D, apsp::graph_fingerprint(g),
              all_rows(g.num_vertices()));

  auto svc = serve::Service<Weight>::open_shard_dir(dir.string());
  ASSERT_TRUE(svc.has_value());
  const auto st = svc->attach_graph(other);
  EXPECT_EQ(st.code(), util::ErrorCode::kInvalidArgument);
  EXPECT_NE(st.message().find("fingerprint"), std::string::npos);
  EXPECT_TRUE(svc->attach_graph(g).is_ok());
}

TEST(Service, ExportMatrixRequiresAllRows) {
  const auto g = test_graph();
  const auto D = apsp::floyd_warshall(g);
  const auto dir = scratch_dir("export_partial");
  write_shard(dir / "shard_0.pack", D, 1, even_rows(g.num_vertices()));

  auto svc = serve::Service<Weight>::open_shard_dir(dir.string());
  ASSERT_TRUE(svc.has_value());
  EXPECT_EQ(svc->export_matrix((dir / "out.padm").string()).code(),
            util::ErrorCode::kUnavailable);
}

TEST(Service, MatrixAccessorExposesComputeBackedResultOnly) {
  const auto g = test_graph();
  const auto want = apsp::floyd_warshall(g);

  auto computed = serve::Service<Weight>::compute(g);
  ASSERT_TRUE(computed.has_value());
  const auto* D = computed->matrix();
  ASSERT_NE(D, nullptr);
  ASSERT_EQ(D->size(), want.size());
  for (VertexId u = 0; u < want.size(); ++u) {
    for (VertexId v = 0; v < want.size(); ++v) {
      ASSERT_EQ(D->at(u, v), want.at(u, v));
    }
  }

  const auto dir = scratch_dir("matrix_accessor");
  ASSERT_TRUE(computed->export_matrix((dir / "full.padm").string()).is_ok());
  auto opened = serve::Service<Weight>::open_matrix((dir / "full.padm").string());
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(opened->matrix(), nullptr);  // rows live in the mapped file
}

// ---------- concurrency (the TSan target) ----------

TEST(ConcurrentServe, ReadersRacingFallbacksAndReloadsStayExact) {
  const auto g = test_graph();
  const auto want = apsp::floyd_warshall(g);
  const auto n = g.num_vertices();
  const auto fp = apsp::graph_fingerprint(g);
  const auto dir = scratch_dir("stress");
  write_shard(dir / "shard_0.pack", want, fp, even_rows(n));

  auto svc_x = serve::Service<Weight>::open_shard_dir(dir.string());
  ASSERT_TRUE(svc_x.has_value());
  auto& svc = *svc_x;
  ASSERT_TRUE(svc.attach_graph(g).is_ok());

  constexpr int kThreads = 4;
  constexpr int kBatches = 60;
  constexpr std::size_t kBatch = 64;
  std::atomic<std::uint64_t> mismatches{0};
  std::atomic<bool> stop{false};

  std::vector<std::thread> readers;
  readers.reserve(kThreads);
  for (int tid = 0; tid < kThreads; ++tid) {
    readers.emplace_back([&, tid] {
      util::Xoshiro256 rng(1000 + static_cast<std::uint64_t>(tid));
      std::vector<serve::Service<Weight>::Pair> pairs(kBatch);
      std::vector<Weight> out(kBatch);
      for (int b = 0; b < kBatches; ++b) {
        for (auto& p : pairs) {
          p = {static_cast<VertexId>(rng.bounded(n)),
               static_cast<VertexId>(rng.bounded(n))};
        }
        if (!svc.distances(pairs, out).is_ok()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (std::size_t i = 0; i < pairs.size(); ++i) {
          if (out[i] != want.at(pairs[i].first, pairs[i].second)) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  // Hot-reload continuously while the readers hammer the store.
  std::thread reloader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ASSERT_TRUE(svc.reload().is_ok());
      std::this_thread::yield();
    }
  });
  for (auto& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  reloader.join();

  EXPECT_EQ(mismatches.load(), 0u);
  const auto stats = svc.stats();
  EXPECT_EQ(stats.queries, static_cast<std::uint64_t>(kThreads) * kBatches * kBatch);
  // Concurrent fallbacks for the same row must compute it exactly once.
  EXPECT_LE(stats.fallback_rows, static_cast<std::uint64_t>(n) - n / 2);
}

// ---------- eager validation satellites ----------

TEST(RunnerValidate, ReportsBadConfigurationWithoutRunning) {
  const auto g = test_graph();

  EXPECT_TRUE(core::Runner<Weight>(g).validate().is_ok());
  EXPECT_EQ(core::Runner<Weight>(g).threads(-2).validate().code(),
            util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(core::Runner<Weight>(g).selection_ratio(1.5).validate().code(),
            util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(core::Runner<Weight>(g).selection_ratio(0.0).validate().code(),
            util::ErrorCode::kInvalidArgument);
  EXPECT_EQ(core::Runner<Weight>(g)
                .algorithm(core::Algorithm::kFloydWarshallBlocked)
                .fw_block(0)
                .validate()
                .code(),
            util::ErrorCode::kInvalidArgument);
  // Control features on an algorithm without source-row boundaries.
  EXPECT_EQ(core::Runner<Weight>(g)
                .algorithm(core::Algorithm::kFloydWarshall)
                .deadline(1.0)
                .validate()
                .code(),
            util::ErrorCode::kInvalidArgument);
  // Deferred setter errors surface through validate() too.
  EXPECT_EQ(core::Runner<Weight>(g).algorithm("no-such-algorithm").validate().code(),
            util::ErrorCode::kInvalidArgument);

  // run() performs the same check and fails without touching the matrix.
  auto r = core::Runner<Weight>(g).selection_ratio(-1.0).run();
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), util::ErrorCode::kInvalidArgument);
}

TEST(PeekCheckpoint, ReadsHeaderWithoutLoadingRows) {
  const auto g = test_graph();
  const auto D = apsp::floyd_warshall(g);
  const auto fp = apsp::graph_fingerprint(g);
  const auto dir = scratch_dir("peek");
  const auto path = (dir / "ckpt.pack").string();
  write_shard(path, D, fp, even_rows(g.num_vertices()));

  const auto info = apsp::peek_checkpoint(path);
  ASSERT_TRUE(info.has_value()) << info.status().to_string();
  EXPECT_EQ(info->n, g.num_vertices());
  EXPECT_EQ(info->graph_fingerprint, fp);
  EXPECT_EQ(info->completed_count, static_cast<std::uint64_t>(g.num_vertices() / 2));
  EXPECT_EQ(info->weight_code, graph::detail::weight_code<Weight>());

  EXPECT_FALSE(apsp::peek_checkpoint((dir / "missing.pack").string()).has_value());
  std::ofstream(dir / "junk.pack") << "this is not a checkpoint at all........";
  const auto junk = apsp::peek_checkpoint((dir / "junk.pack").string());
  ASSERT_FALSE(junk.has_value());
  EXPECT_EQ(junk.status().code(), util::ErrorCode::kFormat);
}

TEST(PeekCheckpoint, SolverRefusesForeignResumeBeforeAllocating) {
  const auto g = test_graph(31);
  const auto other = test_graph(99);
  const auto D = apsp::floyd_warshall(other);
  const auto dir = scratch_dir("resume_guard");
  const auto path = (dir / "ckpt.pack").string();
  write_shard(path, D, apsp::graph_fingerprint(other), all_rows(other.num_vertices()));

  auto r = core::Runner<Weight>(g).resume(path).run();
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), util::ErrorCode::kFormat);
  EXPECT_NE(r.status().message().find("different graph"), std::string::npos);
}

}  // namespace
