// Execution-control and fault-tolerance layer: typed Status/Expected,
// cooperative cancellation and deadlines, checkpoint/resume (bit-identical
// to an uninterrupted run), fault injection via failpoints, and the
// memory-budget precheck.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "test_helpers.hpp"

namespace {

using namespace parapsp;
using util::ErrorCode;

// ---------------------------------------------------------------------------
// Status / Expected / try_invoke

TEST(Status, OkCarriesNoMessageAndComparesByCode) {
  const auto ok = util::Status::ok();
  EXPECT_TRUE(ok.is_ok());
  EXPECT_TRUE(static_cast<bool>(ok));
  EXPECT_EQ(ok.to_string(), "ok");

  const util::Status a{ErrorCode::kIo, "open failed"};
  const util::Status b{ErrorCode::kIo, "different message"};
  const util::Status c{ErrorCode::kParse, "open failed"};
  EXPECT_FALSE(a.is_ok());
  EXPECT_EQ(a, b);  // messages are context, not identity
  EXPECT_FALSE(a == c);
  EXPECT_EQ(a.to_string(), "io: open failed");
}

TEST(Status, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(ErrorCode::kInvalidArgument); ++c) {
    EXPECT_STRNE(util::to_string(static_cast<ErrorCode>(c)), "?");
  }
}

TEST(Status, StatusErrorIsARuntimeErrorWithTypedCode) {
  const util::StatusError e{ErrorCode::kFormat, "bad magic"};
  EXPECT_EQ(e.code(), ErrorCode::kFormat);
  EXPECT_STREQ(e.what(), "bad magic");
  EXPECT_EQ(e.to_status().code(), ErrorCode::kFormat);
  // Legacy catch sites catch std::runtime_error; verify the inheritance.
  try {
    throw util::StatusError(ErrorCode::kIo, "x");
  } catch (const std::runtime_error&) {
    SUCCEED();
  } catch (...) {
    FAIL() << "StatusError must derive from std::runtime_error";
  }
}

TEST(Expected, HoldsValueOrStatus) {
  util::Expected<int> v{42};
  EXPECT_TRUE(v.has_value());
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().is_ok());
  EXPECT_EQ(v.value_or(7), 42);

  util::Expected<int> e{util::Status{ErrorCode::kResource, "oom"}};
  EXPECT_FALSE(e.has_value());
  EXPECT_EQ(e.status().code(), ErrorCode::kResource);
  EXPECT_EQ(e.value_or(7), 7);
  EXPECT_THROW((void)e.value(), util::StatusError);
}

TEST(Expected, OkStatusWithoutValueIsUpgradedToError) {
  util::Expected<int> e{util::Status::ok()};
  EXPECT_FALSE(e.has_value());
  EXPECT_EQ(e.status().code(), ErrorCode::kInvalidArgument);
}

TEST(Expected, TryInvokeMapsExceptionsToTypedCodes) {
  const auto typed = util::try_invoke(
      []() -> int { throw util::StatusError(ErrorCode::kFormat, "bad"); });
  EXPECT_EQ(typed.status().code(), ErrorCode::kFormat);

  const auto oom = util::try_invoke([]() -> int { throw std::bad_alloc(); });
  EXPECT_EQ(oom.status().code(), ErrorCode::kResource);

  const auto arg =
      util::try_invoke([]() -> int { throw std::invalid_argument("nope"); });
  EXPECT_EQ(arg.status().code(), ErrorCode::kInvalidArgument);

  const auto fallback = util::try_invoke(
      []() -> int { throw std::runtime_error("???"); }, ErrorCode::kParse);
  EXPECT_EQ(fallback.status().code(), ErrorCode::kParse);

  const auto fine = util::try_invoke([] { return 5; });
  ASSERT_TRUE(fine.has_value());
  EXPECT_EQ(*fine, 5);
}

TEST(Solver, UnknownAlgorithmValueIsTypedInvalidArgument) {
  // An Algorithm value outside the enum (forced cast, version skew) must come
  // back through the error taxonomy — kInvalidArgument from try_solve, a
  // StatusError (not an opaque logic_error) from the throwing path.
  const auto g = graph::barabasi_albert<std::uint32_t>(32, 2, /*seed=*/1);
  core::SolverOptions opts;
  opts.algorithm = static_cast<core::Algorithm>(250);

  const auto attempt = core::try_solve(g, opts);
  ASSERT_FALSE(attempt.has_value());
  EXPECT_EQ(attempt.status().code(), ErrorCode::kInvalidArgument);
  EXPECT_NE(attempt.status().message().find("250"), std::string::npos);

  try {
    (void)core::solve(g, opts);
    FAIL() << "solve accepted an out-of-enum algorithm value";
  } catch (const util::StatusError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidArgument);
  }

  // The same bogus value through the fluent facade.
  auto via_runner = core::Runner(g).algorithm(static_cast<core::Algorithm>(250)).run();
  ASSERT_FALSE(via_runner.has_value());
  EXPECT_EQ(via_runner.status().code(), ErrorCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// ExecutionControl

TEST(ExecutionControl, CancelAndDeadline) {
  util::ExecutionControl ctl;
  EXPECT_TRUE(ctl.check().is_ok());
  EXPECT_FALSE(ctl.should_stop());

  ctl.request_cancel();
  EXPECT_TRUE(ctl.cancel_requested());
  EXPECT_EQ(ctl.check().code(), ErrorCode::kCancelled);

  ctl.reset();
  EXPECT_TRUE(ctl.check().is_ok());

  ctl.set_deadline_after(0.0);  // expires immediately
  EXPECT_TRUE(ctl.deadline_expired());
  EXPECT_EQ(ctl.check().code(), ErrorCode::kTimeout);
  ctl.clear_deadline();
  EXPECT_TRUE(ctl.check().is_ok());

  // Cancel wins over timeout: a deliberate stop is never reported as expiry.
  ctl.set_deadline_after(-1.0);
  ctl.request_cancel();
  EXPECT_EQ(ctl.check().code(), ErrorCode::kCancelled);
}

TEST(ExecutionControl, ProgressCounter) {
  util::ExecutionControl ctl;
  EXPECT_EQ(ctl.progress(), 0u);
  ctl.add_progress();
  ctl.add_progress(4);
  EXPECT_EQ(ctl.progress(), 5u);
  ctl.reset();
  EXPECT_EQ(ctl.progress(), 0u);
}

// ---------------------------------------------------------------------------
// Cancellation / deadline mid-sweep

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("parapsp_robust_" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
    util::failpoints::disarm_all();
  }
  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }
  std::filesystem::path dir_;
};

using Robustness = TempDir;

// Rows marked complete in a partial result must hold the exact distances an
// uninterrupted run produces; unmarked rows are simply absent, not wrong.
template <typename W>
void expect_completed_rows_exact(const apsp::ApspResult<W>& partial,
                                 const apsp::DistanceMatrix<W>& golden) {
  ASSERT_EQ(partial.completed_rows.size(), golden.size());
  for (VertexId s = 0; s < golden.size(); ++s) {
    if (!partial.completed_rows[s]) continue;
    for (VertexId v = 0; v < golden.size(); ++v) {
      ASSERT_EQ(partial.distances.at(s, v), golden.at(s, v))
          << "completed row " << s << " differs at column " << v;
    }
  }
}

TEST_F(Robustness, CancelMidSweepReturnsPromptlyWithCorrectBitmap) {
  const auto g = graph::barabasi_albert<std::uint32_t>(2500, 8, 77);
  const auto golden = apsp::par_apsp(g).distances;

  util::ExecutionControl ctl;
  core::SolverOptions opts;
  opts.algorithm = core::Algorithm::kParApsp;
  opts.control = &ctl;

  // The watcher cancels shortly after the sweep starts and records when, so
  // the main thread can bound the cancel-to-return latency.
  std::chrono::steady_clock::time_point cancelled_at;
  std::thread watcher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(15));
    cancelled_at = std::chrono::steady_clock::now();
    ctl.request_cancel();
  });
  const auto result = core::solve(g, opts);
  const auto returned_at = std::chrono::steady_clock::now();
  watcher.join();

  if (result.complete()) {
    GTEST_SKIP() << "sweep finished before the cancel landed; nothing to check";
  }
  const auto latency =
      std::chrono::duration_cast<std::chrono::milliseconds>(returned_at - cancelled_at);
  EXPECT_LT(latency.count(), 250) << "cancel must be honored within one row";
  EXPECT_EQ(result.status.code(), ErrorCode::kCancelled);
  EXPECT_LT(result.num_completed_rows(), g.num_vertices());
  EXPECT_EQ(result.num_completed_rows(), ctl.progress());
  expect_completed_rows_exact(result, golden);
}

TEST_F(Robustness, ExpiredDeadlineYieldsTimeoutPartialResult) {
  const auto g = graph::barabasi_albert<std::uint32_t>(2000, 6, 5);

  util::ExecutionControl ctl;
  ctl.set_deadline_after(0.0);  // already expired: deterministic partial run
  core::SolverOptions opts;
  opts.control = &ctl;

  const auto result = core::solve(g, opts);
  EXPECT_EQ(result.status.code(), ErrorCode::kTimeout);
  EXPECT_FALSE(result.complete());
  EXPECT_EQ(result.num_completed_rows(), 0u);
  EXPECT_EQ(result.completed_rows.size(), g.num_vertices());
}

TEST_F(Robustness, ControlRejectedForNonSweepAlgorithms) {
  const auto g = graph::cycle_graph<std::uint32_t>(16);
  util::ExecutionControl ctl;
  core::SolverOptions opts;
  opts.algorithm = core::Algorithm::kFloydWarshall;
  opts.control = &ctl;
  EXPECT_THROW((void)core::solve(g, opts), std::invalid_argument);

  const auto r = core::try_solve(g, opts);
  EXPECT_EQ(r.status().code(), ErrorCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Checkpoint / resume

TEST_F(Robustness, CheckpointRoundTripsCompletedRows) {
  const auto g = graph::barabasi_albert<std::uint32_t>(300, 4, 9);
  const auto golden = apsp::par_apsp(g).distances;
  const auto fp = apsp::graph_fingerprint(g);

  // Mark an arbitrary subset complete and save only those rows.
  std::vector<std::uint8_t> completed(g.num_vertices(), 0);
  for (VertexId s = 0; s < g.num_vertices(); s += 3) completed[s] = 1;
  const auto ck = path("partial.pack");
  ASSERT_TRUE(apsp::save_checkpoint(ck, golden, completed, fp).is_ok());

  const auto state = apsp::load_checkpoint<std::uint32_t>(ck);
  ASSERT_TRUE(state.has_value()) << state.status().to_string();
  EXPECT_EQ(state->graph_fp, fp);
  ASSERT_EQ(state->completed, completed);
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    if (!completed[s]) continue;
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      ASSERT_EQ(state->distances.at(s, v), golden.at(s, v));
    }
  }
}

TEST_F(Robustness, ResumedRunIsBitIdenticalToUninterruptedRun) {
  const auto g = graph::barabasi_albert<std::uint32_t>(2000, 8, 31);
  const auto golden = apsp::par_apsp(g).distances;
  const auto ck = path("resume.pack");

  // Phase 1: run under a watcher that cancels mid-sweep; the stop state is
  // checkpointed. If the sweep wins the race the checkpoint holds every row
  // — resume still has to reproduce the golden matrix.
  {
    util::ExecutionControl ctl;
    core::SolverOptions opts;
    opts.control = &ctl;
    opts.checkpoint_path = ck;
    std::thread watcher([&] {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      ctl.request_cancel();
    });
    const auto partial = core::solve(g, opts);
    watcher.join();
    ASSERT_TRUE(std::filesystem::exists(ck));
  }

  // Phase 2: resume from the checkpoint and run to completion.
  core::SolverOptions opts;
  opts.resume_from = ck;
  const auto resumed = core::solve(g, opts);
  ASSERT_TRUE(resumed.complete()) << resumed.status.to_string();
  parapsp::testing::expect_same_distances(resumed.distances, golden, "resumed");
}

TEST_F(Robustness, ResumeRejectsCheckpointFromDifferentGraph) {
  const auto g1 = graph::barabasi_albert<std::uint32_t>(200, 3, 1);
  const auto g2 = graph::barabasi_albert<std::uint32_t>(200, 3, 2);  // same n!
  const auto ck = path("wrong.pack");

  std::vector<std::uint8_t> completed(g1.num_vertices(), 1);
  const auto D = apsp::par_apsp(g1).distances;
  ASSERT_TRUE(apsp::save_checkpoint(ck, D, completed, apsp::graph_fingerprint(g1)).is_ok());

  core::SolverOptions opts;
  opts.resume_from = ck;
  const auto r = core::try_solve(g2, opts);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), ErrorCode::kFormat);
}

TEST_F(Robustness, LoadCheckpointRejectsCorruptFiles) {
  const auto g = graph::cycle_graph<std::uint32_t>(64);
  const auto D = apsp::par_apsp(g).distances;
  std::vector<std::uint8_t> completed(64, 1);
  const auto ck = path("ok.pack");
  ASSERT_TRUE(
      apsp::save_checkpoint(ck, D, completed, apsp::graph_fingerprint(g)).is_ok());

  // Missing file -> io.
  EXPECT_EQ(apsp::load_checkpoint<std::uint32_t>(path("absent.pack")).status().code(),
            ErrorCode::kIo);

  // Weight-type mismatch -> format.
  EXPECT_EQ(apsp::load_checkpoint<double>(ck).status().code(), ErrorCode::kFormat);

  // Truncation at every structural boundary -> format, never a crash.
  const auto full = std::filesystem::file_size(ck);
  for (const std::uintmax_t keep :
       {std::uintmax_t{0}, std::uintmax_t{7}, std::uintmax_t{sizeof(std::uint32_t)},
        full / 2, full - 1}) {
    const auto trunc = path("trunc.pack");
    std::filesystem::copy_file(ck, trunc,
                               std::filesystem::copy_options::overwrite_existing);
    std::filesystem::resize_file(trunc, keep);
    const auto r = apsp::load_checkpoint<std::uint32_t>(trunc);
    ASSERT_FALSE(r.has_value()) << "keep=" << keep;
    EXPECT_EQ(r.status().code(), ErrorCode::kFormat) << "keep=" << keep;
  }

  // Flipped magic -> format.
  {
    const auto bad = path("magic.pack");
    std::filesystem::copy_file(ck, bad,
                               std::filesystem::copy_options::overwrite_existing);
    std::FILE* f = std::fopen(bad.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fputc('X', f);
    std::fclose(f);
    EXPECT_EQ(apsp::load_checkpoint<std::uint32_t>(bad).status().code(),
              ErrorCode::kFormat);
  }
}

TEST_F(Robustness, CorruptedRowByteIsCaughtByPerRowCrc) {
  // The v1 structural checks can't see a flipped byte *inside* a row — the
  // file is the right size, the bitmap is coherent. The v2 per-row CRC must.
  const auto g = graph::cycle_graph<std::uint32_t>(32);
  const auto D = apsp::par_apsp(g).distances;
  std::vector<std::uint8_t> completed(32, 1);
  const auto ck = path("crc.pack");
  ASSERT_TRUE(
      apsp::save_checkpoint(ck, D, completed, apsp::graph_fingerprint(g)).is_ok());

  std::FILE* f = std::fopen(ck.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, -2, SEEK_END), 0);  // row-data territory
  const int b = std::fgetc(f);
  ASSERT_EQ(std::fseek(f, -1, SEEK_CUR), 0);
  std::fputc(b ^ 0x5a, f);
  std::fclose(f);

  const auto r = apsp::load_checkpoint<std::uint32_t>(ck);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), ErrorCode::kFormat);
  EXPECT_NE(r.status().message().find("CRC"), std::string::npos)
      << r.status().message();
}

TEST_F(Robustness, Version1CheckpointWithoutCrcStillAccepted) {
  // Hand-craft a pre-CRC (version 1) file: header + bitmap + raw rows, no
  // CRC section. Old checkpoints on disk must keep loading after the format
  // bump.
  const VertexId n = 8;
  const auto g = graph::cycle_graph<std::uint32_t>(n);
  const auto D = apsp::par_apsp(g).distances;

  apsp::detail::CheckpointHeader hdr;
  hdr.version = apsp::detail::kCheckpointVersionNoCrc;
  hdr.weight_code = 0;  // u32
  hdr.n = n;
  hdr.graph_fingerprint = apsp::graph_fingerprint(g);
  hdr.completed_count = n;
  const std::vector<std::uint64_t> bitmap{0xffu};

  const auto p = path("v1.pack");
  {
    std::ofstream out(p, std::ios::binary);
    out.write(reinterpret_cast<const char*>(&hdr), sizeof hdr);
    out.write(reinterpret_cast<const char*>(bitmap.data()), sizeof(std::uint64_t));
    for (VertexId s = 0; s < n; ++s) {
      out.write(reinterpret_cast<const char*>(D.row(s).data()),
                n * sizeof(std::uint32_t));
    }
    ASSERT_TRUE(out.good());
  }

  const auto ck = apsp::load_checkpoint<std::uint32_t>(p);
  ASSERT_TRUE(ck.has_value()) << ck.status().message();
  EXPECT_EQ(ck->num_completed(), n);
  EXPECT_EQ(ck->distances, D);
}

// ---------------------------------------------------------------------------
// Memory budget / overflow precheck

TEST(MemoryBudget, CheckedMulDetectsOverflow) {
  std::size_t out = 0;
  EXPECT_TRUE(parapsp::checked_mul(0, SIZE_MAX, out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(parapsp::checked_mul(1u << 16, 1u << 16, out));
  EXPECT_FALSE(parapsp::checked_mul(SIZE_MAX / 2, 3, out));
  EXPECT_FALSE(parapsp::checked_mul(SIZE_MAX, SIZE_MAX, out));
}

TEST(MemoryBudget, HugeMatrixYieldsResourceErrorNotBadAlloc) {
  // n*n*4 overflows size_t on 32-bit and is denied by the precheck on
  // 64-bit long before the allocator sees it.
  const auto st = apsp::DistanceMatrix<std::uint32_t>::allocation_status(
      std::numeric_limits<VertexId>::max());
  EXPECT_EQ(st.code(), ErrorCode::kResource);

  const auto m = apsp::DistanceMatrix<std::uint32_t>::try_create(
      1u << 20, parapsp::infinity<std::uint32_t>(), /*budget_bytes=*/1u << 20);
  ASSERT_FALSE(m.has_value());
  EXPECT_EQ(m.status().code(), ErrorCode::kResource);
}

TEST(MemoryBudget, WithinBudgetSucceeds) {
  const auto m = apsp::DistanceMatrix<std::uint32_t>::try_create(
      64, parapsp::infinity<std::uint32_t>(), /*budget_bytes=*/1u << 20);
  ASSERT_TRUE(m.has_value()) << m.status().to_string();
  EXPECT_EQ(m->size(), 64u);
  EXPECT_EQ(m->at(3, 5), parapsp::infinity<std::uint32_t>());
}

// ---------------------------------------------------------------------------
// Failpoints (compiled in for test builds via PARAPSP_FAILPOINTS=ON)

#if defined(PARAPSP_FAILPOINTS_ENABLED)

class Failpoints : public TempDir {};

TEST_F(Failpoints, ArmDisarmAndHitSemantics) {
  namespace fp = util::failpoints;
  EXPECT_FALSE(fp::should_fail("unarmed"));

  fp::arm("every");
  EXPECT_TRUE(fp::should_fail("every"));
  EXPECT_TRUE(fp::should_fail("every"));
  fp::disarm("every");
  EXPECT_FALSE(fp::should_fail("every"));

  // name=k: first k hits fail, then pass.
  fp::arm("firstk", 1, 2);
  EXPECT_TRUE(fp::should_fail("firstk"));
  EXPECT_TRUE(fp::should_fail("firstk"));
  EXPECT_FALSE(fp::should_fail("firstk"));
  EXPECT_EQ(fp::hits("firstk"), 3u);

  // name@k: pass until the k-th hit, fail exactly that one.
  fp::arm("third", 3, 1);
  EXPECT_FALSE(fp::should_fail("third"));
  EXPECT_FALSE(fp::should_fail("third"));
  EXPECT_TRUE(fp::should_fail("third"));
  EXPECT_FALSE(fp::should_fail("third"));

  fp::disarm_all();
  EXPECT_FALSE(fp::should_fail("firstk"));
}

TEST_F(Failpoints, SpecGrammar) {
  namespace fp = util::failpoints;
  EXPECT_TRUE(fp::arm_from_spec("a;b=2;c@3"));
  EXPECT_TRUE(fp::should_fail("a"));
  EXPECT_TRUE(fp::should_fail("b"));
  EXPECT_TRUE(fp::should_fail("b"));
  EXPECT_FALSE(fp::should_fail("b"));
  EXPECT_FALSE(fp::should_fail("c"));
  EXPECT_FALSE(fp::should_fail("c"));
  EXPECT_TRUE(fp::should_fail("c"));
  fp::disarm_all();

  EXPECT_FALSE(fp::arm_from_spec("ok;bad=notanumber"));
  EXPECT_FALSE(fp::arm_from_spec("=3"));
  fp::disarm_all();
}

TEST_F(Failpoints, ShortReadInjectionYieldsFormatError) {
  const auto g = graph::barabasi_albert<std::uint32_t>(100, 3, 4);
  const auto file = path("g.bin");
  graph::save_binary(g, file);

  util::failpoints::arm("io_short_read");
  const auto r = graph::try_load_binary<std::uint32_t>(file);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), ErrorCode::kFormat);

  util::failpoints::disarm_all();
  const auto fine = graph::try_load_binary<std::uint32_t>(file);
  ASSERT_TRUE(fine.has_value()) << fine.status().to_string();
  EXPECT_EQ(fine->num_vertices(), g.num_vertices());
}

TEST_F(Failpoints, OpenInjectionYieldsIoErrorForEveryReader) {
  const auto g = graph::cycle_graph<std::uint32_t>(20);
  const auto bin = path("g.bin"), txt = path("g.txt"), metis = path("g.metis");
  graph::save_binary(g, bin);
  graph::write_edge_list(g, txt);
  graph::save_metis(g, metis);

  util::failpoints::arm("io_open_read");
  EXPECT_EQ(graph::try_load_binary<std::uint32_t>(bin).status().code(), ErrorCode::kIo);
  EXPECT_EQ(graph::try_load_edge_list<std::uint32_t>(txt,
                                                     graph::Directedness::kUndirected)
                .status()
                .code(),
            ErrorCode::kIo);
  EXPECT_EQ(graph::try_load_metis<std::uint32_t>(metis).status().code(), ErrorCode::kIo);
}

TEST_F(Failpoints, AllocInjectionYieldsResourceError) {
  util::failpoints::arm("alloc_fail");
  const auto m = apsp::DistanceMatrix<std::uint32_t>::try_create(32);
  ASSERT_FALSE(m.has_value());
  EXPECT_EQ(m.status().code(), ErrorCode::kResource);
}

TEST_F(Failpoints, CheckpointWriteInjectionSurfacesInSolveStatus) {
  const auto g = graph::barabasi_albert<std::uint32_t>(150, 3, 6);
  const auto ck = path("inject.pack");

  // Direct save: typed io error, and no half-written file left behind.
  {
    const auto D = apsp::par_apsp(g).distances;
    std::vector<std::uint8_t> completed(g.num_vertices(), 1);
    util::failpoints::arm("checkpoint_write_flush");
    const auto st = apsp::save_checkpoint(ck, D, completed, apsp::graph_fingerprint(g));
    EXPECT_EQ(st.code(), ErrorCode::kIo);
    EXPECT_FALSE(std::filesystem::exists(ck));
    EXPECT_FALSE(std::filesystem::exists(ck + ".tmp"));
    util::failpoints::disarm_all();
  }

  // Through the solver: the run completes (checkpointing is auxiliary) but
  // the failure is surfaced in result.status rather than swallowed.
  {
    util::failpoints::arm("checkpoint_write");
    core::SolverOptions opts;
    opts.checkpoint_path = ck;
    const auto result = core::solve(g, opts);
    EXPECT_EQ(result.status.code(), ErrorCode::kIo);
    EXPECT_EQ(result.num_completed_rows(), g.num_vertices());  // work not lost
  }
}

TEST_F(Failpoints, CheckpointReadInjectionYieldsIoError) {
  const auto g = graph::cycle_graph<std::uint32_t>(16);
  const auto D = apsp::par_apsp(g).distances;
  std::vector<std::uint8_t> completed(16, 1);
  const auto ck = path("read_fp.pack");
  ASSERT_TRUE(
      apsp::save_checkpoint(ck, D, completed, apsp::graph_fingerprint(g)).is_ok());

  util::failpoints::arm("checkpoint_read");
  const auto r = apsp::load_checkpoint<std::uint32_t>(ck);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), ErrorCode::kIo);  // retryable: transient open
  util::failpoints::disarm_all();

  // And the crc failpoint models the permanent flavor without corrupting a
  // real file.
  util::failpoints::arm("checkpoint_crc");
  const auto c = apsp::load_checkpoint<std::uint32_t>(ck);
  ASSERT_FALSE(c.has_value());
  EXPECT_EQ(c.status().code(), ErrorCode::kFormat);
}

#endif  // PARAPSP_FAILPOINTS_ENABLED

// ---------------------------------------------------------------------------
// Retry / backoff / error classification (util/retry.hpp, util/status.hpp)

TEST(Retry, IsRetryableDrawsTheTransientPermanentLine) {
  using util::ErrorCode;
  // Transient: the world may change under a retry.
  EXPECT_TRUE(util::is_retryable(ErrorCode::kIo));
  EXPECT_TRUE(util::is_retryable(ErrorCode::kTimeout));
  EXPECT_TRUE(util::is_retryable(ErrorCode::kUnavailable));
  // Permanent: retrying a deterministic failure only hides it.
  EXPECT_FALSE(util::is_retryable(ErrorCode::kOk));
  EXPECT_FALSE(util::is_retryable(ErrorCode::kInvalidArgument));
  EXPECT_FALSE(util::is_retryable(ErrorCode::kFormat));
  EXPECT_FALSE(util::is_retryable(ErrorCode::kParse));
  EXPECT_FALSE(util::is_retryable(ErrorCode::kResource));
  EXPECT_FALSE(util::is_retryable(ErrorCode::kCancelled));
  EXPECT_FALSE(util::is_retryable(ErrorCode::kInternal));
  // The Status overload (ADL) agrees with the code overload.
  const util::Status transient{ErrorCode::kUnavailable, "worker died"};
  const util::Status permanent{ErrorCode::kFormat, "bad file"};
  EXPECT_TRUE(is_retryable(transient));
  EXPECT_FALSE(is_retryable(permanent));
}

TEST(Retry, BackoffWalksACappedGeometricSchedule) {
  const util::RetryPolicy policy{.max_attempts = 5, .initial_delay_s = 0.01,
                                 .max_delay_s = 0.05, .multiplier = 2.0};
  util::Backoff b(policy);
  EXPECT_DOUBLE_EQ(b.delay_s(1), 0.01);
  EXPECT_DOUBLE_EQ(b.delay_s(2), 0.02);
  EXPECT_DOUBLE_EQ(b.delay_s(3), 0.04);
  EXPECT_DOUBLE_EQ(b.delay_s(4), 0.05);  // capped
  EXPECT_DOUBLE_EQ(b.delay_s(9), 0.05);  // stays capped
  EXPECT_DOUBLE_EQ(b.delay_s(0), 0.0);

  // The cursor honors the attempt budget: after max_attempts failures the
  // budget is spent.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(b.should_retry()) << i;
    (void)b.next_delay_s();
  }
  EXPECT_FALSE(b.should_retry());
  b.reset();
  EXPECT_TRUE(b.should_retry());
}

TEST(Retry, RetryWithBackoffRetriesTransientFailuresOnly) {
  const util::RetryPolicy fast{.max_attempts = 4, .initial_delay_s = 0.0,
                               .max_delay_s = 0.0, .multiplier = 1.0};

  // Transient failure that heals on the 3rd attempt.
  int calls = 0;
  const auto healed = util::retry_with_backoff(fast, [&] {
    ++calls;
    return calls < 3 ? util::Status{util::ErrorCode::kIo, "flaky"}
                     : util::Status::ok();
  });
  EXPECT_TRUE(healed.is_ok());
  EXPECT_EQ(calls, 3);

  // Permanent failure: exactly one attempt.
  calls = 0;
  const auto refused = util::retry_with_backoff(fast, [&] {
    ++calls;
    return util::Status{util::ErrorCode::kFormat, "corrupt"};
  });
  EXPECT_EQ(refused.code(), util::ErrorCode::kFormat);
  EXPECT_EQ(calls, 1);

  // Budget exhaustion: the last failure is reported.
  calls = 0;
  const auto exhausted = util::retry_with_backoff(fast, [&] {
    ++calls;
    return util::Status{util::ErrorCode::kTimeout, "still down"};
  });
  EXPECT_EQ(exhausted.code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(calls, 4);
}

TEST(Retry, RetryWithBackoffWorksOnExpectedReturns) {
  const util::RetryPolicy fast{.max_attempts = 3, .initial_delay_s = 0.0,
                               .max_delay_s = 0.0, .multiplier = 1.0};
  int calls = 0;
  const auto value = util::retry_with_backoff(fast, [&]() -> util::Expected<int> {
    ++calls;
    if (calls < 2) return util::Status{util::ErrorCode::kUnavailable, "not yet"};
    return 42;
  });
  ASSERT_TRUE(value.has_value());
  EXPECT_EQ(*value, 42);
  EXPECT_EQ(calls, 2);
}

// ---------------------------------------------------------------------------
// CLI unknown-option rejection

TEST(Cli, UnknownOptionsAreReportedAndRejected) {
  const char* argv[] = {"tool", "--known", "5", "--typo-flag", "--also-bad", "x"};
  const util::Args args(static_cast<int>(std::size(argv)), argv);
  EXPECT_EQ(args.get_int("known", 0), 5);

  const auto unknown = args.unknown_options();
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_THROW(args.reject_unknown(), std::invalid_argument);
}

TEST(Cli, RejectUnknownPassesWhenAllOptionsQueried) {
  const char* argv[] = {"tool", "--n", "10", "--verbose"};
  const util::Args args(static_cast<int>(std::size(argv)), argv);
  EXPECT_EQ(args.get_int("n", 0), 10);
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_TRUE(args.unknown_options().empty());
  EXPECT_NO_THROW(args.reject_unknown());
}

}  // namespace
