// Degenerate-input behavior across the whole APSP stack: empty graphs,
// singletons, isolated vertices, self-loops, parallel edges, zero weights,
// and saturation at the integer infinity boundary.
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace {

using namespace parapsp;
using graph::Directedness;

std::vector<core::Algorithm> all_algorithms() {
  return {core::Algorithm::kFloydWarshall, core::Algorithm::kFloydWarshallBlocked,
          core::Algorithm::kRepeatedDijkstra, core::Algorithm::kRepeatedDijkstraPar,
          core::Algorithm::kPengBasic, core::Algorithm::kPengOptimized,
          core::Algorithm::kPengAdaptive, core::Algorithm::kParAlg1,
          core::Algorithm::kParAlg2, core::Algorithm::kParApsp,
          core::Algorithm::kCustom};
}

TEST(EdgeCases, EmptyGraphAllAlgorithms) {
  const graph::Graph<std::uint32_t> g;
  for (const auto a : all_algorithms()) {
    core::SolverOptions opts;
    opts.algorithm = a;
    const auto result = core::solve(g, opts);
    EXPECT_EQ(result.distances.size(), 0u) << core::to_string(a);
  }
}

TEST(EdgeCases, SingleVertexAllAlgorithms) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kUndirected, 1);
  const auto g = b.build();
  for (const auto a : all_algorithms()) {
    core::SolverOptions opts;
    opts.algorithm = a;
    const auto result = core::solve(g, opts);
    ASSERT_EQ(result.distances.size(), 1u) << core::to_string(a);
    EXPECT_EQ(result.distances.at(0, 0), 0u) << core::to_string(a);
  }
}

TEST(EdgeCases, TwoIsolatedVertices) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kUndirected, 2);
  const auto g = b.build();
  const auto D = core::solve(g).distances;
  EXPECT_EQ(D.at(0, 0), 0u);
  EXPECT_TRUE(is_infinite(D.at(0, 1)));
  EXPECT_TRUE(is_infinite(D.at(1, 0)));
}

TEST(EdgeCases, SelfLoopsAreInert) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kUndirected);
  b.add_edge(0, 0, 1);
  b.add_edge(0, 1, 3);
  b.add_edge(1, 1, 0);  // even a zero self-loop must not corrupt distances
  const auto g = b.build(graph::DuplicatePolicy::kKeepAll, graph::SelfLoopPolicy::kKeep);
  const auto want = apsp::floyd_warshall(g);
  EXPECT_EQ(want.at(0, 0), 0u);
  EXPECT_EQ(want.at(0, 1), 3u);
  for (const auto a : all_algorithms()) {
    core::SolverOptions opts;
    opts.algorithm = a;
    parapsp::testing::expect_same_distances(core::solve(g, opts).distances, want,
                                            core::to_string(a));
  }
}

TEST(EdgeCases, ParallelEdgesUseMinimum) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kDirected);
  b.add_edge(0, 1, 9);
  b.add_edge(0, 1, 2);
  b.add_edge(0, 1, 5);
  const auto g = b.build(graph::DuplicatePolicy::kKeepAll);
  for (const auto a : all_algorithms()) {
    core::SolverOptions opts;
    opts.algorithm = a;
    EXPECT_EQ(core::solve(g, opts).distances.at(0, 1), 2u) << core::to_string(a);
  }
}

TEST(EdgeCases, ZeroWeightCyclesTerminate) {
  // A zero-weight cycle is the classic label-correcting termination trap.
  graph::GraphBuilder<std::uint32_t> b(Directedness::kDirected);
  b.add_edge(0, 1, 0);
  b.add_edge(1, 2, 0);
  b.add_edge(2, 0, 0);
  b.add_edge(1, 3, 4);
  const auto g = b.build();
  const auto want = apsp::floyd_warshall(g);
  for (const auto a : all_algorithms()) {
    core::SolverOptions opts;
    opts.algorithm = a;
    parapsp::testing::expect_same_distances(core::solve(g, opts).distances, want,
                                            core::to_string(a));
  }
  EXPECT_EQ(want.at(0, 3), 4u);
  EXPECT_EQ(want.at(2, 1), 0u);
}

TEST(EdgeCases, LargeWeightsSaturateNotOverflow) {
  const auto big = infinity<std::uint32_t>() - 2;
  graph::GraphBuilder<std::uint32_t> b(Directedness::kDirected);
  b.add_edge(0, 1, big);
  b.add_edge(1, 2, big);
  const auto g = b.build();
  const auto D = apsp::floyd_warshall(g);
  EXPECT_EQ(D.at(0, 1), big);
  // big + big would wrap a plain uint32 add; must clamp to infinity.
  EXPECT_TRUE(is_infinite(D.at(0, 2)));
  const auto P = apsp::par_apsp(g).distances;
  EXPECT_TRUE(is_infinite(P.at(0, 2)));
  EXPECT_EQ(P.at(0, 1), big);
}

TEST(EdgeCases, StarGraphAllAlgorithms) {
  // The most extreme degree skew possible — one vertex of degree n-1.
  const auto g = graph::star_graph<std::uint32_t>(64);
  const auto want = apsp::floyd_warshall(g);
  for (const auto a : all_algorithms()) {
    core::SolverOptions opts;
    opts.algorithm = a;
    parapsp::testing::expect_same_distances(core::solve(g, opts).distances, want,
                                            core::to_string(a));
  }
}

TEST(EdgeCases, ManySmallComponents) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kUndirected, 60);
  for (VertexId v = 0; v + 1 < 60; v += 2) b.add_edge(v, v + 1);
  const auto g = b.build();
  const auto want = apsp::floyd_warshall(g);
  parapsp::testing::expect_same_distances(apsp::par_apsp(g).distances, want,
                                          "parapsp on islands");
  EXPECT_EQ(analysis::reachable_pairs(want), 60u);
}

TEST(EdgeCases, DirectedSinkAndSource) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kDirected, 4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  const auto g = b.build();  // 0 pure source, 3 pure sink
  const auto D = apsp::par_apsp(g).distances;
  EXPECT_EQ(D.at(0, 3), 2u);
  EXPECT_TRUE(is_infinite(D.at(3, 0)));
  EXPECT_TRUE(is_infinite(D.at(1, 0)));
}

TEST(EdgeCases, OrderingProceduresOnDegenerateDegreeShapes) {
  // Graphs where min == max degree (cycle) stress ParBuckets' bin formula
  // (division by zero span) and MultiLists' single bucket.
  const auto g = graph::cycle_graph<std::uint32_t>(32);
  const auto want = apsp::floyd_warshall(g);
  for (const auto kind :
       {order::OrderingKind::kParBuckets, order::OrderingKind::kParMax,
        order::OrderingKind::kMultiLists}) {
    parapsp::testing::expect_same_distances(
        apsp::par_apsp_with(g, kind).distances, want,
        std::string("cycle + ") + order::to_string(kind));
  }
}

}  // namespace
