// Tests for landmark-based approximate APSP, distance-matrix persistence,
// and the repeated-BFS baseline.
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "apsp/landmarks.hpp"
#include "apsp/matrix_io.hpp"
#include "apsp/repeated_bfs.hpp"
#include "test_helpers.hpp"

namespace {

using namespace parapsp;

// ---------- landmarks ----------

class LandmarkBounds : public ::testing::TestWithParam<apsp::LandmarkPolicy> {};

TEST_P(LandmarkBounds, BracketExactDistances) {
  const auto g = parapsp::testing::make_graph(
      {"ba", parapsp::testing::GraphCase::Family::kBA, 200, 3,
       graph::Directedness::kUndirected, false, 31});
  const auto exact = apsp::floyd_warshall(g);
  const apsp::LandmarkIndex<std::uint32_t> index(g, 8, GetParam(), 32);

  for (VertexId u = 0; u < g.num_vertices(); u += 7) {
    for (VertexId v = 0; v < g.num_vertices(); v += 11) {
      const auto d = exact.at(u, v);
      const auto ub = index.upper_bound(u, v);
      const auto lb = index.lower_bound(u, v);
      if (is_infinite(d)) {
        EXPECT_TRUE(is_infinite(ub)) << u << "," << v;
      } else {
        EXPECT_GE(ub, d) << u << "," << v;
        EXPECT_LE(lb, d) << u << "," << v;
      }
    }
  }
}

TEST_P(LandmarkBounds, DirectedBracketing) {
  const auto g = parapsp::testing::make_graph(
      {"rmat", parapsp::testing::GraphCase::Family::kRMAT, 64, 300,
       graph::Directedness::kDirected, false, 33});
  const auto exact = apsp::floyd_warshall(g);
  const apsp::LandmarkIndex<std::uint32_t> index(g, 6, GetParam(), 34);
  for (VertexId u = 0; u < g.num_vertices(); u += 3) {
    for (VertexId v = 0; v < g.num_vertices(); v += 5) {
      const auto d = exact.at(u, v);
      if (is_infinite(d)) continue;
      EXPECT_GE(index.upper_bound(u, v), d) << u << "," << v;
      EXPECT_LE(index.lower_bound(u, v), d) << u << "," << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, LandmarkBounds,
                         ::testing::Values(apsp::LandmarkPolicy::kTopDegree,
                                           apsp::LandmarkPolicy::kRandom),
                         [](const ::testing::TestParamInfo<apsp::LandmarkPolicy>& info) {
                           return info.param == apsp::LandmarkPolicy::kTopDegree
                                      ? "topdegree"
                                      : "random";
                         });

TEST(Landmarks, ExactWhenEndpointIsLandmark) {
  const auto g = graph::barabasi_albert<std::uint32_t>(150, 3, 35);
  const auto exact = apsp::floyd_warshall(g);
  const apsp::LandmarkIndex<std::uint32_t> index(g, 5,
                                                 apsp::LandmarkPolicy::kTopDegree);
  for (const VertexId L : index.landmarks()) {
    for (VertexId v = 0; v < g.num_vertices(); v += 13) {
      EXPECT_EQ(index.upper_bound(L, v), exact.at(L, v));
    }
  }
}

TEST(Landmarks, TopDegreePicksHubs) {
  const auto g = graph::star_graph<std::uint32_t>(20);
  const apsp::LandmarkIndex<std::uint32_t> index(g, 1,
                                                 apsp::LandmarkPolicy::kTopDegree);
  ASSERT_EQ(index.landmarks().size(), 1u);
  EXPECT_EQ(index.landmarks()[0], 0u);  // the hub
  // One hub landmark makes every bound exact on a star.
  for (VertexId u = 1; u < 20; ++u) {
    for (VertexId v = 1; v < 20; ++v) {
      if (u != v) EXPECT_EQ(index.upper_bound(u, v), 2u);
    }
  }
}

TEST(Landmarks, HubLandmarksTighterThanRandomOnScaleFree) {
  const auto raw = graph::barabasi_albert<std::uint32_t>(600, 3, 36);
  const auto g = graph::relabel(raw, graph::random_permutation(600, 37));
  const auto exact = apsp::floyd_warshall(g);
  auto mean_gap = [&](apsp::LandmarkPolicy policy) {
    const apsp::LandmarkIndex<std::uint32_t> index(g, 4, policy, 38);
    double gap = 0.0;
    std::uint64_t pairs = 0;
    for (VertexId u = 0; u < 600; u += 17) {
      for (VertexId v = 0; v < 600; v += 13) {
        if (u == v || is_infinite(exact.at(u, v))) continue;
        gap += static_cast<double>(index.upper_bound(u, v) - exact.at(u, v));
        ++pairs;
      }
    }
    return gap / static_cast<double>(pairs);
  };
  EXPECT_LE(mean_gap(apsp::LandmarkPolicy::kTopDegree),
            mean_gap(apsp::LandmarkPolicy::kRandom));
}

TEST(Landmarks, DirectedTopDegreeRanksByTotalDegree) {
  // Regression: on directed graphs kTopDegree used to rank by out-degree
  // alone, which selects "broadcaster" vertices (huge out-degree, zero
  // in-degree). No path reaches a broadcaster, so its to-landmark rows are
  // all-infinite and every upper bound through it collapses to infinity.
  //
  // Vertices 0..3: broadcasters — edges out to everyone, no in-edges
  // (out-degree 36, the largest in the graph). Vertices 4..5: true hubs —
  // reachable from and reaching every non-broadcaster (out-degree 34,
  // in-degree 38). Ranking by out-degree picks the broadcasters; ranking by
  // total degree picks the hubs.
  constexpr VertexId kN = 40;
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kDirected, kN);
  for (VertexId bc = 0; bc < 4; ++bc) {
    for (VertexId v = 4; v < kN; ++v) b.add_edge(bc, v);
  }
  for (VertexId hub = 4; hub < 6; ++hub) {
    for (VertexId v = 6; v < kN; ++v) {
      b.add_edge(hub, v);
      b.add_edge(v, hub);
    }
  }
  const auto g = b.build();

  const apsp::LandmarkIndex<std::uint32_t> index(g, 2, apsp::LandmarkPolicy::kTopDegree);
  for (const VertexId L : index.landmarks()) {
    EXPECT_TRUE(L == 4 || L == 5) << "selected a broadcaster decoy: " << L;
  }

  // With hub landmarks every pair among {4..kN-1} routes through a landmark,
  // so the upper bounds are finite and bracket the exact distances. (With
  // broadcaster landmarks they would all be infinite.)
  const auto exact = apsp::floyd_warshall(g);
  for (VertexId u = 4; u < kN; ++u) {
    for (VertexId v = 4; v < kN; ++v) {
      if (u == v) continue;
      const auto ub = index.upper_bound(u, v);
      ASSERT_FALSE(is_infinite(ub)) << u << "," << v;
      EXPECT_GE(ub, exact.at(u, v)) << u << "," << v;
      EXPECT_LE(index.lower_bound(u, v), exact.at(u, v)) << u << "," << v;
    }
  }
}

TEST(Landmarks, RejectsZeroK) {
  const auto g = graph::path_graph<std::uint32_t>(4);
  EXPECT_THROW((apsp::LandmarkIndex<std::uint32_t>(g, 0, apsp::LandmarkPolicy::kRandom)),
               std::invalid_argument);
}

// ---------- matrix I/O ----------

class MatrixTempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("parapsp_matrix_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(MatrixTempDir, BinaryRoundtrip) {
  const auto g = graph::barabasi_albert<std::uint32_t>(90, 3, 39);
  const auto D = apsp::par_apsp(g).distances;
  apsp::save_matrix(D, path("d.bin"));
  const auto D2 = apsp::load_matrix<std::uint32_t>(path("d.bin"));
  EXPECT_EQ(D2, D);
}

TEST_F(MatrixTempDir, TypeMismatchRejected) {
  const apsp::DistanceMatrix<std::uint32_t> D(4);
  apsp::save_matrix(D, path("t.bin"));
  EXPECT_THROW((void)apsp::load_matrix<double>(path("t.bin")), std::runtime_error);
}

TEST_F(MatrixTempDir, TruncationRejected) {
  const apsp::DistanceMatrix<std::uint32_t> D(16);
  apsp::save_matrix(D, path("c.bin"));
  std::filesystem::resize_file(path("c.bin"),
                               std::filesystem::file_size(path("c.bin")) / 2);
  EXPECT_THROW((void)apsp::load_matrix<std::uint32_t>(path("c.bin")), std::runtime_error);
}

TEST_F(MatrixTempDir, CsvExportShape) {
  const auto g = graph::path_graph<std::uint32_t>(3);
  const auto D = apsp::floyd_warshall(g);
  apsp::export_matrix_csv(D, path("d.csv"));
  std::ifstream in(path("d.csv"));
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "v0,v1,v2");
  std::getline(in, line);
  EXPECT_EQ(line, "0,1,2");
}

TEST_F(MatrixTempDir, CsvMarksUnreachable) {
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kUndirected, 2);
  const auto D = apsp::floyd_warshall(b.build());
  apsp::export_matrix_csv(D, path("u.csv"));
  std::ifstream in(path("u.csv"));
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  EXPECT_NE(all.find("inf"), std::string::npos);
}

// ---------- repeated BFS ----------

TEST(RepeatedBfs, MatchesFloydWarshallOnUnitWeights) {
  const auto g = graph::barabasi_albert<std::uint32_t>(150, 3, 40);
  parapsp::testing::expect_same_distances(apsp::repeated_bfs(g),
                                          apsp::floyd_warshall(g), "repeated bfs");
}

TEST(RepeatedBfs, RejectsWeightedGraphs) {
  auto g = graph::path_graph<std::uint32_t>(4);
  g = graph::randomize_weights<std::uint32_t>(g, 2, 5, 41);
  EXPECT_THROW((void)apsp::repeated_bfs(g), std::invalid_argument);
}

TEST(RepeatedBfs, UnitWeightDetector) {
  EXPECT_TRUE(apsp::is_unit_weighted(graph::path_graph<std::uint32_t>(4)));
  EXPECT_FALSE(apsp::is_unit_weighted(graph::path_graph<std::uint32_t>(4, 2u)));
}

}  // namespace
