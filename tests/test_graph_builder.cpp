// Unit tests for graph/csr_graph.hpp and graph/builder.hpp.
#include <gtest/gtest.h>

#include "graph/builder.hpp"
#include "graph/csr_graph.hpp"
#include "graph/validation.hpp"

namespace {

using namespace parapsp;
using namespace parapsp::graph;
using G32 = Graph<std::uint32_t>;
using B32 = GraphBuilder<std::uint32_t>;

TEST(Builder, EmptyGraph) {
  B32 b(Directedness::kUndirected);
  const auto g = b.build();
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
  EXPECT_EQ(g.max_degree(), 0u);
  EXPECT_TRUE(validate(g).ok());
}

TEST(Builder, DirectedBasics) {
  B32 b(Directedness::kDirected);
  b.add_edge(0, 1, 5);
  b.add_edge(0, 2, 3);
  b.add_edge(2, 1, 1);
  const auto g = b.build();
  EXPECT_TRUE(g.is_directed());
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.num_stored_edges(), 3u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 0u);
  EXPECT_EQ(g.degree(2), 1u);
  // Adjacency is sorted by target.
  ASSERT_EQ(g.neighbors(0).size(), 2u);
  EXPECT_EQ(g.neighbors(0)[0], 1u);
  EXPECT_EQ(g.neighbors(0)[1], 2u);
  EXPECT_EQ(g.weights(0)[0], 5u);
  EXPECT_EQ(g.weights(0)[1], 3u);
  EXPECT_TRUE(validate(g).ok());
}

TEST(Builder, UndirectedStoresBothArcs) {
  B32 b(Directedness::kUndirected);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  const auto g = b.build();
  EXPECT_FALSE(g.is_directed());
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_stored_edges(), 4u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_TRUE(validate(g).ok());
}

TEST(Builder, VertexCountGrowsWithIds) {
  B32 b(Directedness::kDirected);
  b.add_edge(0, 9);
  const auto g = b.build();
  EXPECT_EQ(g.num_vertices(), 10u);
  EXPECT_EQ(g.degree(5), 0u);  // isolated middle vertices exist
}

TEST(Builder, ReserveVerticesAddsIsolated) {
  B32 b(Directedness::kUndirected);
  b.add_edge(0, 1);
  b.reserve_vertices(5);
  const auto g = b.build();
  EXPECT_EQ(g.num_vertices(), 5u);
  EXPECT_EQ(g.degree(4), 0u);
}

TEST(Builder, NegativeWeightRejected) {
  GraphBuilder<double> b(Directedness::kDirected);
  EXPECT_THROW(b.add_edge(0, 1, -1.0), std::invalid_argument);
}

TEST(Builder, SelfLoopKeepPolicy) {
  B32 b(Directedness::kUndirected);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const auto g = b.build(DuplicatePolicy::kKeepAll, SelfLoopPolicy::kKeep);
  EXPECT_EQ(g.num_self_loops(), 1u);
  // Undirected self-loop stored once; edge count = 2.
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.num_stored_edges(), 3u);
}

TEST(Builder, SelfLoopDropPolicy) {
  B32 b(Directedness::kUndirected);
  b.add_edge(0, 0);
  b.add_edge(0, 1);
  const auto g = b.build(DuplicatePolicy::kKeepAll, SelfLoopPolicy::kDrop);
  EXPECT_EQ(g.num_self_loops(), 0u);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Builder, DuplicateKeepAll) {
  B32 b(Directedness::kDirected);
  b.add_edge(0, 1, 5);
  b.add_edge(0, 1, 2);
  const auto g = b.build(DuplicatePolicy::kKeepAll);
  EXPECT_EQ(g.num_edges(), 2u);
  // Sorted by weight within the (0,1) group.
  EXPECT_EQ(g.weights(0)[0], 2u);
  EXPECT_EQ(g.weights(0)[1], 5u);
}

TEST(Builder, DuplicateKeepMinWeight) {
  B32 b(Directedness::kDirected);
  b.add_edge(0, 1, 5);
  b.add_edge(0, 1, 2);
  b.add_edge(0, 1, 9);
  const auto g = b.build(DuplicatePolicy::kKeepMinWeight);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.weights(0)[0], 2u);
}

TEST(Builder, DuplicateCollapseUndirectedKeepsSymmetry) {
  B32 b(Directedness::kUndirected);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 0, 2);  // same logical edge, both orientations present
  const auto g = b.build(DuplicatePolicy::kKeepMinWeight);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.weights(0)[0], 2u);
  EXPECT_EQ(g.weights(1)[0], 2u);
  EXPECT_TRUE(validate(g).ok()) << validate(g).to_string();
}

TEST(Builder, ClearResets) {
  B32 b(Directedness::kDirected);
  b.add_edge(0, 1);
  b.clear();
  EXPECT_EQ(b.pending_edges(), 0u);
  const auto g = b.build();
  EXPECT_EQ(g.num_vertices(), 0u);
}

TEST(Graph, DegreeExtremes) {
  B32 b(Directedness::kUndirected);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  const auto g = b.build();
  EXPECT_EQ(g.max_degree(), 3u);
  EXPECT_EQ(g.min_degree(), 1u);
  const auto degs = g.degrees();
  EXPECT_EQ(degs, (std::vector<VertexId>{3, 1, 1, 1}));
}

TEST(Graph, SummaryString) {
  B32 b(Directedness::kDirected);
  b.add_edge(0, 1);
  const auto g = b.build();
  EXPECT_EQ(g.summary(), "directed, n=2, m=1");
}

TEST(Validation, DetectsBrokenOffsets) {
  // Hand-build a corrupt CSR: target out of range.
  std::vector<EdgeId> offsets{0, 1};
  std::vector<VertexId> targets{5};
  std::vector<std::uint32_t> weights{1};
  const G32 g(Directedness::kDirected, 1, std::move(offsets), std::move(targets),
              std::move(weights));
  EXPECT_FALSE(validate(g).ok());
}

TEST(Validation, DetectsAsymmetricUndirected) {
  // An "undirected" graph with only one arc direction stored.
  std::vector<EdgeId> offsets{0, 1, 1};
  std::vector<VertexId> targets{1};
  std::vector<std::uint32_t> weights{1};
  const G32 g(Directedness::kUndirected, 2, std::move(offsets), std::move(targets),
              std::move(weights));
  EXPECT_FALSE(validate(g).ok());
}

}  // namespace
