// Unit tests for graph/ops.hpp and graph/components.hpp.
#include <gtest/gtest.h>

#include <numeric>

#include "graph/builder.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "graph/validation.hpp"

namespace {

using namespace parapsp;
using namespace parapsp::graph;

TEST(Transpose, ReversesArcs) {
  GraphBuilder<std::uint32_t> b(Directedness::kDirected);
  b.add_edge(0, 1, 5);
  b.add_edge(0, 2, 3);
  b.add_edge(2, 1, 7);
  const auto t = transpose(b.build());
  EXPECT_EQ(t.degree(0), 0u);
  EXPECT_EQ(t.degree(1), 2u);
  EXPECT_EQ(t.degree(2), 1u);
  EXPECT_EQ(t.neighbors(2)[0], 0u);
  EXPECT_EQ(t.weights(2)[0], 3u);
  EXPECT_TRUE(validate(t).ok());
}

TEST(Transpose, InvolutionOnRandomDigraph) {
  const auto g = erdos_renyi_gnm<std::uint32_t>(60, 300, 1, Directedness::kDirected);
  const auto tt = transpose(transpose(g));
  EXPECT_EQ(g.offsets(), tt.offsets());
  EXPECT_EQ(g.targets(), tt.targets());
  EXPECT_EQ(g.edge_weights(), tt.edge_weights());
}

TEST(Transpose, UndirectedIsNoop) {
  const auto g = erdos_renyi_gnm<std::uint32_t>(30, 50, 2);
  const auto t = transpose(g);
  EXPECT_EQ(g.targets(), t.targets());
}

TEST(Relabel, PreservesStructure) {
  const auto g = barabasi_albert<std::uint32_t>(50, 2, 3);
  const auto perm = random_permutation(50, 9);
  const auto r = relabel(g, perm);
  EXPECT_EQ(r.num_vertices(), g.num_vertices());
  EXPECT_EQ(r.num_edges(), g.num_edges());
  EXPECT_TRUE(validate(r).ok());
  // Degrees are carried through the permutation.
  for (VertexId v = 0; v < 50; ++v) {
    EXPECT_EQ(r.degree(perm[v]), g.degree(v));
  }
}

TEST(Relabel, RejectsWrongSize) {
  const auto g = path_graph<std::uint32_t>(4);
  EXPECT_THROW(relabel(g, {0, 1}), std::invalid_argument);
}

TEST(InducedSubgraph, ExtractsCorrectEdges) {
  // path 0-1-2-3-4; keep {1,2,3} -> path of 3.
  const auto g = path_graph<std::uint32_t>(5);
  const auto s = induced_subgraph(g, {1, 2, 3});
  EXPECT_EQ(s.num_vertices(), 3u);
  EXPECT_EQ(s.num_edges(), 2u);
  EXPECT_TRUE(validate(s).ok());
}

TEST(InducedSubgraph, DirectedKeepsOrientation) {
  GraphBuilder<std::uint32_t> b(Directedness::kDirected);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 0);
  const auto s = induced_subgraph(b.build(), {0, 2});
  EXPECT_EQ(s.num_edges(), 1u);  // only 2->0 survives
  EXPECT_EQ(s.degree(1), 1u);    // new id of old vertex 2
}

TEST(InducedSubgraph, RejectsOutOfRange) {
  const auto g = path_graph<std::uint32_t>(3);
  EXPECT_THROW(induced_subgraph(g, {0, 7}), std::invalid_argument);
}

TEST(ToUndirected, SymmetrizesAndCollapses) {
  GraphBuilder<std::uint32_t> b(Directedness::kDirected);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 0, 3);  // anti-parallel pair -> one edge, min weight
  b.add_edge(1, 2, 2);
  const auto u = to_undirected(b.build());
  EXPECT_FALSE(u.is_directed());
  EXPECT_EQ(u.num_edges(), 2u);
  EXPECT_EQ(u.weights(0)[0], 3u);
  EXPECT_TRUE(validate(u).ok());
}

TEST(RandomizeWeights, RangeAndSymmetry) {
  const auto g = erdos_renyi_gnm<std::uint32_t>(40, 100, 4);
  const auto w = randomize_weights<std::uint32_t>(g, 2, 9, 5);
  EXPECT_EQ(w.num_edges(), g.num_edges());
  for (VertexId u = 0; u < w.num_vertices(); ++u) {
    for (const auto wt : w.weights(u)) {
      EXPECT_GE(wt, 2u);
      EXPECT_LE(wt, 9u);
    }
  }
  EXPECT_TRUE(validate(w).ok());  // includes arc symmetry of weights
}

TEST(RandomizeWeights, FloatingRange) {
  const auto g0 = erdos_renyi_gnm<double>(30, 60, 6);
  const auto w = randomize_weights<double>(g0, 0.5, 2.5, 7);
  for (VertexId u = 0; u < w.num_vertices(); ++u) {
    for (const auto wt : w.weights(u)) {
      EXPECT_GE(wt, 0.5);
      EXPECT_LE(wt, 2.5);
    }
  }
}

TEST(RandomizeWeights, RejectsBadRange) {
  const auto g = path_graph<std::uint32_t>(3);
  EXPECT_THROW(randomize_weights<std::uint32_t>(g, 5, 2, 1), std::invalid_argument);
}

TEST(RandomPermutation, IsPermutation) {
  const auto p = random_permutation(100, 8);
  std::vector<VertexId> sorted = p;
  std::sort(sorted.begin(), sorted.end());
  std::vector<VertexId> expect(100);
  std::iota(expect.begin(), expect.end(), VertexId{0});
  EXPECT_EQ(sorted, expect);
}

// ---------- components ----------

TEST(Components, SingleComponent) {
  const auto g = cycle_graph<std::uint32_t>(10);
  EXPECT_EQ(connected_components(g).count, 1u);
}

TEST(Components, CountsIslands) {
  GraphBuilder<std::uint32_t> b(Directedness::kUndirected, 7);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  // 5, 6 isolated.
  const auto comps = connected_components(b.build());
  EXPECT_EQ(comps.count, 4u);
  EXPECT_EQ(comps.label[0], comps.label[1]);
  EXPECT_EQ(comps.label[2], comps.label[4]);
  EXPECT_NE(comps.label[0], comps.label[2]);
  EXPECT_NE(comps.label[5], comps.label[6]);
}

TEST(Components, DirectedUsesWeakConnectivity) {
  GraphBuilder<std::uint32_t> b(Directedness::kDirected);
  b.add_edge(0, 1);
  b.add_edge(2, 1);  // 0->1<-2 weakly connected
  EXPECT_EQ(connected_components(b.build()).count, 1u);
}

TEST(Components, LargestComponentExtraction) {
  GraphBuilder<std::uint32_t> b(Directedness::kUndirected, 10);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);  // component of 4
  b.add_edge(5, 6);  // component of 2
  const auto lcc = largest_component(b.build());
  EXPECT_EQ(lcc.num_vertices(), 4u);
  EXPECT_EQ(lcc.num_edges(), 3u);
  EXPECT_EQ(connected_components(lcc).count, 1u);
}

TEST(UnionFind, BasicMerging) {
  UnionFind uf(5);
  EXPECT_TRUE(uf.unite(0, 1));
  EXPECT_TRUE(uf.unite(2, 3));
  EXPECT_FALSE(uf.unite(1, 0));  // already merged
  EXPECT_TRUE(uf.unite(0, 2));
  EXPECT_EQ(uf.find(3), uf.find(1));
  EXPECT_NE(uf.find(4), uf.find(0));
}

}  // namespace
