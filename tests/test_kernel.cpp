// Equivalence and invariant tests for the vectorized min-plus relaxation
// kernel (src/kernel/relax_row.hpp) and the aligned/padded DistanceMatrix
// storage it runs over.
//
// The central claim is BIT-IDENTITY: the AVX2 path must produce exactly the
// same dst rows, successor rows, and improvement counts as the scalar
// reference, for every weight type, length (including non-multiple-of-lane
// tails), and saturation edge case. The graph-level tests then confirm the
// claim end-to-end: whole APSP solves pinned to scalar vs simd produce
// equal distance matrices and equal successor matrices.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "apsp/distance_matrix.hpp"
#include "apsp/modified_dijkstra.hpp"
#include "apsp/parallel.hpp"
#include "apsp/paths.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "kernel/relax_row.hpp"
#include "util/aligned_buffer.hpp"
#include "util/rng.hpp"

namespace {

using namespace parapsp;

template <typename W>
class KernelEquivalence : public ::testing::Test {};

using WeightTypes = ::testing::Types<std::uint32_t, std::int32_t, float, double>;
TYPED_TEST_SUITE(KernelEquivalence, WeightTypes);

/// Random weights with a deliberate sprinkle of at/near-infinity values so
/// the saturating-add paths are exercised, not just the common case.
template <typename W>
W random_weight(util::Xoshiro256& rng) {
  const auto roll = rng.bounded(16);
  if (roll == 0) return infinity<W>();
  if (roll == 1) return infinity<W>() - static_cast<W>(1);
  return static_cast<W>(rng.bounded(1u << 16));
}

/// Runs one variant under `impl` on copies of the same input and returns
/// (dst bytes, succ bytes, count) for comparison.
template <typename W>
struct VariantResult {
  std::vector<W> dst;
  std::vector<VertexId> succ;
  std::uint64_t count = 0;
};

enum class Variant { kCount, kSucc, kNocount };

template <typename W>
VariantResult<W> run_variant(kernel::Impl impl, Variant variant, W base,
                             const std::vector<W>& src, const std::vector<W>& dst0,
                             const std::vector<VertexId>& succ0) {
  const std::size_t len = src.size();
  // The kernels require 64-byte alignment in production use; replicate it.
  util::AlignedBuffer<W> s(len), d(len);
  util::AlignedBuffer<VertexId> q(len);
  std::memcpy(s.data(), src.data(), len * sizeof(W));
  std::memcpy(d.data(), dst0.data(), len * sizeof(W));
  std::memcpy(q.data(), succ0.data(), len * sizeof(VertexId));

  kernel::ImplScope scope(impl);
  VariantResult<W> out;
  switch (variant) {
    case Variant::kCount:
      out.count = kernel::relax_row(base, s.data(), d.data(), len);
      break;
    case Variant::kSucc:
      out.count = kernel::relax_row_succ(base, s.data(), d.data(), q.data(),
                                         VertexId(7), len);
      break;
    case Variant::kNocount:
      kernel::relax_row_nocount(base, s.data(), d.data(), len);
      break;
  }
  out.dst.assign(d.data(), d.data() + len);
  out.succ.assign(q.data(), q.data() + len);
  return out;
}

TYPED_TEST(KernelEquivalence, SimdMatchesScalarOnRandomRows) {
  using W = TypeParam;
  if (!kernel::simd_available()) GTEST_SKIP() << "AVX2 unavailable";

  util::Xoshiro256 rng(0xbeefcafe);
  // Lengths straddle the 8/4-lane boundaries (tails!) and include a long row.
  for (const std::size_t len : {1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u}) {
    std::vector<W> src(len), dst(len);
    std::vector<VertexId> succ(len, VertexId(0));
    for (auto& x : src) x = random_weight<W>(rng);
    for (auto& x : dst) x = random_weight<W>(rng);
    for (const W base : {W(0), W(3), infinity<W>(),
                         static_cast<W>(infinity<W>() - static_cast<W>(1))}) {
      for (const Variant v : {Variant::kCount, Variant::kSucc, Variant::kNocount}) {
        const auto a = run_variant(kernel::Impl::kScalar, v, base, src, dst, succ);
        const auto b = run_variant(kernel::Impl::kSimd, v, base, src, dst, succ);
        ASSERT_EQ(0, std::memcmp(a.dst.data(), b.dst.data(), len * sizeof(W)))
            << "dst diverges: len=" << len << " base=" << base
            << " variant=" << static_cast<int>(v);
        ASSERT_EQ(a.succ, b.succ) << "succ diverges: len=" << len;
        ASSERT_EQ(a.count, b.count) << "count diverges: len=" << len;
      }
    }
  }
}

TYPED_TEST(KernelEquivalence, SaturationAndTieSemantics) {
  using W = TypeParam;
  const W inf = infinity<W>();
  const auto impls = kernel::simd_available()
                         ? std::vector<kernel::Impl>{kernel::Impl::kScalar,
                                                     kernel::Impl::kSimd}
                         : std::vector<kernel::Impl>{kernel::Impl::kScalar};
  for (const auto impl : impls) {
    // src unreachable => dst unchanged; base+src overflow => clamps to inf,
    // never wraps below dst; exact tie => keeps old value, not counted.
    const std::vector<W> src = {inf, static_cast<W>(inf - static_cast<W>(1)),
                                W(10), W(5), W(2)};
    const std::vector<W> dst = {W(9), W(9), inf, W(8), W(5)};
    const std::vector<VertexId> succ(5, VertexId(42));
    const auto r = run_variant(impl, Variant::kSucc, W(3), src, dst, succ);
    EXPECT_EQ(r.dst[0], W(9)) << kernel::to_string(impl);   // 3+inf = inf
    EXPECT_EQ(r.dst[1], W(9)) << kernel::to_string(impl);   // saturates, no wrap
    EXPECT_EQ(r.dst[2], W(13)) << kernel::to_string(impl);  // improves inf
    EXPECT_EQ(r.dst[3], W(8)) << kernel::to_string(impl);   // tie: keeps old
    EXPECT_EQ(r.dst[4], W(5)) << kernel::to_string(impl);   // tie: keeps old
    EXPECT_EQ(r.count, 1u) << kernel::to_string(impl);
    const std::vector<VertexId> want_succ = {42, 42, 7, 42, 42};
    EXPECT_EQ(r.succ, want_succ) << kernel::to_string(impl);
  }
}

/// Whole-solve equivalence: the same graph solved with the kernel pinned to
/// scalar and to simd must give equal distance matrices (parallel solve) and
/// equal successor matrices (sequential path solve — the parallel one is
/// nondeterministic in which equal-length path it records).
template <typename W>
void expect_graph_equivalence(const graph::Graph<W>& g, const std::string& label) {
  apsp::DistanceMatrix<W> d_scalar, d_simd;
  {
    kernel::ImplScope scope(kernel::Impl::kScalar);
    d_scalar = apsp::par_apsp(g).distances;
  }
  {
    kernel::ImplScope scope(kernel::Impl::kSimd);
    d_simd = apsp::par_apsp(g).distances;
  }
  EXPECT_TRUE(d_scalar == d_simd) << label << ": par_apsp distances diverge";

  apsp::ApspPathsResult<W> p_scalar, p_simd;
  {
    kernel::ImplScope scope(kernel::Impl::kScalar);
    p_scalar = apsp::peng_optimized_paths(g);
  }
  {
    kernel::ImplScope scope(kernel::Impl::kSimd);
    p_simd = apsp::peng_optimized_paths(g);
  }
  EXPECT_TRUE(p_scalar.distances == p_simd.distances)
      << label << ": paths distances diverge";
  for (VertexId s = 0; s < g.num_vertices(); ++s) {
    const auto a = p_scalar.successors.row(s);
    const auto b = p_simd.successors.row(s);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin()))
        << label << ": successor row " << s << " diverges";
  }
}

TYPED_TEST(KernelEquivalence, WholeSolveOnStandardGraphFamilies) {
  using W = TypeParam;
  if (!kernel::simd_available()) GTEST_SKIP() << "AVX2 unavailable";

  const auto weighted = [](graph::Graph<W> g, std::uint64_t seed) {
    return graph::randomize_weights<W>(g, W(1), W(20), seed);
  };
  expect_graph_equivalence(weighted(graph::erdos_renyi_gnm<W>(120, 400, 11), 101),
                           "er");
  expect_graph_equivalence(weighted(graph::barabasi_albert<W>(150, 3, 15), 102),
                           "ba");
  expect_graph_equivalence(weighted(graph::rmat<W>(6, 300, 21), 103), "rmat");
}

// ---------------------------------------------------------------------------
// Storage invariants: alignment, padding, first-touch reset.

using StorageTypes = ::testing::Types<std::uint32_t, float, double>;
template <typename W>
class PaddedStorage : public ::testing::Test {};
TYPED_TEST_SUITE(PaddedStorage, StorageTypes);

TYPED_TEST(PaddedStorage, RowsAlignedAndPaddingIsInfinity) {
  using W = TypeParam;
  for (const VertexId n : {VertexId(1), VertexId(3), VertexId(63), VertexId(64),
                           VertexId(100)}) {
    apsp::DistanceMatrix<W> D(n);
    const std::size_t lane = util::AlignedBuffer<W>::kAlignment / sizeof(W);
    EXPECT_EQ(D.stride() % lane, 0u) << "n=" << n;
    EXPECT_GE(D.stride(), n);
    for (VertexId u = 0; u < n; ++u) {
      const auto addr = reinterpret_cast<std::uintptr_t>(D.row(u).data());
      EXPECT_EQ(addr % util::AlignedBuffer<W>::kAlignment, 0u)
          << "row " << u << " misaligned, n=" << n;
      const auto padded = D.row_padded(u);
      for (std::size_t i = n; i < padded.size(); ++i) {
        EXPECT_EQ(padded[i], infinity<W>()) << "padding dirty at (" << u << "," << i << ")";
      }
    }
    // reset(fill) refills logical cells but must keep padding at infinity —
    // the kernels stream the padded stride and rely on padding never winning.
    D.reset(W(5));
    for (VertexId u = 0; u < n; ++u) {
      EXPECT_EQ(D.at(u, n - 1), W(5));
      const auto padded = D.row_padded(u);
      for (std::size_t i = n; i < padded.size(); ++i) {
        ASSERT_EQ(padded[i], infinity<W>());
      }
    }
  }
}

TEST(PaddedStorageSolve, PaddingSurvivesAWholeSolve) {
  // n=100 is not a multiple of the 16-cell uint32 lane, so the sweep's
  // full-stride kernel calls stream real padding here.
  const auto g = graph::barabasi_albert<std::uint32_t>(100, 3, 33);
  const auto result = apsp::par_apsp(g);
  const auto& D = result.distances;
  ASSERT_GT(D.stride(), D.size());
  for (VertexId u = 0; u < D.size(); ++u) {
    const auto padded = D.row_padded(u);
    for (std::size_t i = D.size(); i < padded.size(); ++i) {
      ASSERT_EQ(padded[i], infinity<std::uint32_t>())
          << "solve dirtied padding at (" << u << "," << i << ")";
    }
  }
}

TEST(Workspace, ResizeIsGrowOnly) {
  apsp::DijkstraWorkspace ws;
  ws.resize(100);
  EXPECT_EQ(ws.in_queue_.size(), 100u);
  ws.resize(50);  // shrinking request: keeps capacity, no re-zero
  EXPECT_EQ(ws.in_queue_.size(), 100u);
  ws.resize(200);
  EXPECT_EQ(ws.in_queue_.size(), 200u);
  EXPECT_TRUE(std::all_of(ws.in_queue_.begin(), ws.in_queue_.end(),
                          [](std::uint8_t b) { return b == 0; }));
}

TEST(KernelDispatch, EnvAndScopeSelection) {
  // Whatever PARAPSP_KERNEL said at startup, set_impl/ImplScope must
  // round-trip; requesting simd degrades to scalar when unavailable.
  const auto before = kernel::active_impl();
  {
    kernel::ImplScope scope(kernel::Impl::kScalar);
    EXPECT_EQ(kernel::active_impl(), kernel::Impl::kScalar);
    {
      kernel::ImplScope inner(kernel::Impl::kSimd);
      if (kernel::simd_available()) {
        EXPECT_EQ(kernel::active_impl(), kernel::Impl::kSimd);
      } else {
        EXPECT_EQ(kernel::active_impl(), kernel::Impl::kScalar);
      }
    }
    EXPECT_EQ(kernel::active_impl(), kernel::Impl::kScalar);
  }
  EXPECT_EQ(kernel::active_impl(), before);
}

}  // namespace
