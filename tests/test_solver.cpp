// Tests for the core::solve facade: dispatch, options, name parsing.
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace {

using namespace parapsp;
using core::Algorithm;

TEST(SolverNames, RoundtripAllAlgorithms) {
  for (const auto a :
       {Algorithm::kFloydWarshall, Algorithm::kFloydWarshallBlocked,
        Algorithm::kRepeatedDijkstra, Algorithm::kRepeatedDijkstraPar,
        Algorithm::kPengBasic, Algorithm::kPengOptimized, Algorithm::kPengAdaptive,
        Algorithm::kParAlg1, Algorithm::kParAlg2, Algorithm::kParApsp,
        Algorithm::kCustom}) {
    EXPECT_EQ(core::algorithm_from_string(core::to_string(a)), a);
  }
  EXPECT_THROW(core::algorithm_from_string("nope"), std::invalid_argument);
}

TEST(SolverNames, ScheduleRoundtrip) {
  for (const auto s : {apsp::Schedule::kBlock, apsp::Schedule::kStaticCyclic,
                       apsp::Schedule::kDynamicCyclic}) {
    EXPECT_EQ(apsp::schedule_from_string(apsp::to_string(s)), s);
  }
  EXPECT_THROW(apsp::schedule_from_string("nope"), std::invalid_argument);
}

TEST(Solver, DefaultRunsParApsp) {
  const auto g = graph::barabasi_albert<std::uint32_t>(150, 3, 51);
  const auto result = core::solve(g);
  parapsp::testing::expect_same_distances(result.distances, apsp::floyd_warshall(g),
                                          "default solve");
}

TEST(Solver, EveryAlgorithmDispatches) {
  const auto g = graph::erdos_renyi_gnm<std::uint32_t>(80, 250, 52);
  const auto want = apsp::floyd_warshall(g);
  for (const auto a :
       {Algorithm::kFloydWarshall, Algorithm::kFloydWarshallBlocked,
        Algorithm::kRepeatedDijkstra, Algorithm::kRepeatedDijkstraPar,
        Algorithm::kPengBasic, Algorithm::kPengOptimized, Algorithm::kPengAdaptive,
        Algorithm::kParAlg1, Algorithm::kParAlg2, Algorithm::kParApsp,
        Algorithm::kCustom}) {
    core::SolverOptions opts;
    opts.algorithm = a;
    parapsp::testing::expect_same_distances(core::solve(g, opts).distances, want,
                                            core::to_string(a));
  }
}

TEST(Solver, ThreadOptionRespectedAndRestored) {
  const int ambient = util::max_threads();
  const auto g = graph::barabasi_albert<std::uint32_t>(100, 2, 53);
  core::SolverOptions opts;
  opts.threads = 2;
  (void)core::solve(g, opts);
  EXPECT_EQ(util::max_threads(), ambient);
}

TEST(Solver, CustomOrderingAndSchedule) {
  const auto g = graph::barabasi_albert<std::uint32_t>(120, 3, 54);
  const auto want = apsp::floyd_warshall(g);
  core::SolverOptions opts;
  opts.algorithm = Algorithm::kCustom;
  for (const auto kind : {order::OrderingKind::kParMax, order::OrderingKind::kParBuckets,
                          order::OrderingKind::kStdSort}) {
    opts.ordering = kind;
    for (const auto sched : {apsp::Schedule::kBlock, apsp::Schedule::kDynamicCyclic}) {
      opts.schedule = sched;
      parapsp::testing::expect_same_distances(
          core::solve(g, opts).distances, want,
          std::string(order::to_string(kind)) + "/" + apsp::to_string(sched));
    }
  }
}

TEST(Solver, SelectionRatioForwarded) {
  const auto g = graph::barabasi_albert<std::uint32_t>(100, 3, 55);
  core::SolverOptions opts;
  opts.algorithm = Algorithm::kPengOptimized;
  opts.selection_ratio = 0.1;
  parapsp::testing::expect_same_distances(core::solve(g, opts).distances,
                                          apsp::floyd_warshall(g), "ratio 0.1");
}

TEST(Solver, FwBlockForwarded) {
  const auto g = graph::erdos_renyi_gnm<std::uint32_t>(70, 200, 56);
  core::SolverOptions opts;
  opts.algorithm = Algorithm::kFloydWarshallBlocked;
  opts.fw_block = 5;
  parapsp::testing::expect_same_distances(core::solve(g, opts).distances,
                                          apsp::floyd_warshall(g), "block 5");
}

TEST(Solver, WorksOnEmptyGraph) {
  const graph::Graph<std::uint32_t> g;
  const auto result = core::solve(g);
  EXPECT_EQ(result.distances.size(), 0u);
}

}  // namespace
