// Shared fixtures and case generators for the ParAPSP test suite.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "parapsp/parapsp.hpp"

namespace parapsp::testing {

/// A named random-graph configuration for parameterized suites.
struct GraphCase {
  std::string name;
  enum class Family : std::uint8_t { kER, kBA, kWS, kRMAT } family = Family::kER;
  VertexId n = 100;
  std::uint64_t param = 3;  ///< edges (ER), m per vertex (BA), k (WS), edges (RMAT)
  graph::Directedness dir = graph::Directedness::kUndirected;
  bool weighted = false;    ///< random weights in [1, 20] when true
  std::uint64_t seed = 1;
};

inline std::uint32_t rmat_scale_for(VertexId n) {
  std::uint32_t scale = 1;
  while ((VertexId{1} << scale) < n) ++scale;
  return scale;
}

/// Materializes the case as a uint32-weighted graph.
inline graph::Graph<std::uint32_t> make_graph(const GraphCase& c) {
  graph::Graph<std::uint32_t> g;
  switch (c.family) {
    case GraphCase::Family::kER:
      g = graph::erdos_renyi_gnm<std::uint32_t>(c.n, c.param, c.seed, c.dir);
      break;
    case GraphCase::Family::kBA:
      g = graph::barabasi_albert<std::uint32_t>(c.n, static_cast<VertexId>(c.param),
                                                c.seed, c.dir);
      break;
    case GraphCase::Family::kWS:
      g = graph::watts_strogatz<std::uint32_t>(c.n, static_cast<VertexId>(c.param), 0.2,
                                               c.seed);
      break;
    case GraphCase::Family::kRMAT:
      g = graph::rmat<std::uint32_t>(rmat_scale_for(c.n), c.param, c.seed, c.dir);
      break;
  }
  if (c.weighted) g = graph::randomize_weights<std::uint32_t>(g, 1, 20, c.seed ^ 0xabcdef);
  return g;
}

/// Pretty-printer so gtest names parameterized cases readably.
inline std::string case_name(const ::testing::TestParamInfo<GraphCase>& info) {
  return info.param.name;
}

/// EXPECT_* that two distance matrices are identical, reporting the first
/// mismatching pair.
template <WeightType W>
void expect_same_distances(const apsp::DistanceMatrix<W>& got,
                           const apsp::DistanceMatrix<W>& want,
                           const std::string& label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  VertexId u = 0, v = 0;
  const bool differs = got.first_difference(want, u, v).value();
  EXPECT_FALSE(differs) << label << ": differs at (" << u << "," << v << "): got "
                        << got.at(u, v) << ", want " << want.at(u, v);
}

/// The standard cross-algorithm case roster: families x direction x weights.
inline std::vector<GraphCase> standard_cases() {
  using F = GraphCase::Family;
  return {
      {"er_undirected", F::kER, 120, 400, graph::Directedness::kUndirected, false, 11},
      {"er_directed", F::kER, 120, 700, graph::Directedness::kDirected, false, 12},
      {"er_weighted", F::kER, 100, 350, graph::Directedness::kUndirected, true, 13},
      {"er_sparse_disconnected", F::kER, 150, 60, graph::Directedness::kUndirected, false, 14},
      {"ba_small", F::kBA, 150, 2, graph::Directedness::kUndirected, false, 15},
      {"ba_dense", F::kBA, 120, 6, graph::Directedness::kUndirected, false, 16},
      {"ba_weighted", F::kBA, 100, 3, graph::Directedness::kUndirected, true, 17},
      {"ws_ring", F::kWS, 140, 3, graph::Directedness::kUndirected, false, 18},
      {"ws_weighted", F::kWS, 100, 2, graph::Directedness::kUndirected, true, 19},
      {"rmat_directed", F::kRMAT, 128, 500, graph::Directedness::kDirected, false, 20},
      {"rmat_undirected", F::kRMAT, 128, 400, graph::Directedness::kUndirected, false, 21},
      {"rmat_weighted_directed", F::kRMAT, 64, 300, graph::Directedness::kDirected, true, 22},
  };
}

}  // namespace parapsp::testing
