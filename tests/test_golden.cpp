// Golden-value tests: small graphs with fully hand-computed distance
// matrices, direct tests of the sweep API, and weighted analysis metrics.
#include <gtest/gtest.h>

#include "test_helpers.hpp"

namespace {

using namespace parapsp;
using graph::Directedness;

TEST(Golden, WeightedDiamondFullMatrix) {
  //      1
  //  0 ----- 1
  //  |       |
  //  4|      |2       plus edge 1->3 (6), 2->3 (3), directed
  //  2 ------3
  graph::GraphBuilder<std::uint32_t> b(Directedness::kDirected);
  b.add_edge(0, 1, 1);
  b.add_edge(0, 2, 4);
  b.add_edge(1, 2, 2);
  b.add_edge(1, 3, 6);
  b.add_edge(2, 3, 3);
  const auto g = b.build();
  const auto D = apsp::par_apsp(g).distances;

  const auto inf = infinity<std::uint32_t>();
  const std::uint32_t want[4][4] = {
      {0, 1, 3, 6},
      {inf, 0, 2, 5},
      {inf, inf, 0, 3},
      {inf, inf, inf, 0},
  };
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = 0; v < 4; ++v) {
      EXPECT_EQ(D.at(u, v), want[u][v]) << u << "," << v;
    }
  }
}

TEST(Golden, UndirectedTriangleWithTail) {
  // Triangle 0-1-2 (unit) with a tail 2-3 of weight 5.
  graph::GraphBuilder<std::uint32_t> b(Directedness::kUndirected);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(0, 2, 1);
  b.add_edge(2, 3, 5);
  const auto D = apsp::par_apsp(b.build()).distances;
  const std::uint32_t want[4][4] = {
      {0, 1, 1, 6},
      {1, 0, 1, 6},
      {1, 1, 0, 5},
      {6, 6, 5, 0},
  };
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = 0; v < 4; ++v) {
      EXPECT_EQ(D.at(u, v), want[u][v]) << u << "," << v;
    }
  }
}

TEST(Golden, PathGraphDistancesAreIndexDifferences) {
  const auto g = graph::path_graph<std::uint32_t>(9);
  const auto D = apsp::par_apsp(g).distances;
  for (VertexId u = 0; u < 9; ++u) {
    for (VertexId v = 0; v < 9; ++v) {
      EXPECT_EQ(D.at(u, v), static_cast<std::uint32_t>(u > v ? u - v : v - u));
    }
  }
}

TEST(Golden, CycleGraphWrapsAround) {
  const auto g = graph::cycle_graph<std::uint32_t>(8);
  const auto D = apsp::par_apsp(g).distances;
  for (VertexId u = 0; u < 8; ++u) {
    for (VertexId v = 0; v < 8; ++v) {
      const auto direct = static_cast<std::uint32_t>(u > v ? u - v : v - u);
      EXPECT_EQ(D.at(u, v), std::min(direct, 8 - direct));
    }
  }
}

// ---------- sweep API directly ----------

TEST(Sweep, PartialSourceSetFillsOnlyThoseRows) {
  const auto g = graph::barabasi_albert<std::uint32_t>(60, 3, 61);
  apsp::DistanceMatrix<std::uint32_t> D(60);
  apsp::FlagArray flags(60);
  const order::Ordering some{5, 17, 42};
  (void)apsp::sweep_sequential(g, some, D, flags);
  EXPECT_EQ(flags.count_complete(), 3u);
  for (const VertexId s : some) {
    const auto want = sssp::dijkstra(g, s);
    for (VertexId v = 0; v < 60; ++v) {
      ASSERT_EQ(D.at(s, v), want[v]) << s << "," << v;
    }
  }
  // Untouched rows stay all-infinite.
  EXPECT_TRUE(is_infinite(D.at(0, 1)));
}

TEST(Sweep, ParallelMatchesSequentialOnSameOrder) {
  const auto g = graph::rmat<std::uint32_t>(7, 600, 62);
  const auto order = order::multilists_order(g.degrees());

  apsp::DistanceMatrix<std::uint32_t> Ds(g.num_vertices()), Dp(g.num_vertices());
  apsp::FlagArray fs(g.num_vertices()), fp(g.num_vertices());
  (void)apsp::sweep_sequential(g, order, Ds, fs);
  util::ThreadScope scope(4);
  (void)apsp::sweep_parallel(g, order, Dp, fp);
  EXPECT_EQ(Ds, Dp);
}

TEST(Sweep, StatsAccumulateAcrossCalls) {
  const auto g = graph::star_graph<std::uint32_t>(20);
  apsp::DistanceMatrix<std::uint32_t> D(20);
  apsp::FlagArray flags(20);
  const auto s1 = apsp::sweep_sequential(g, {0}, D, flags);
  const auto s2 = apsp::sweep_sequential(g, {1, 2}, D, flags);
  EXPECT_GE(s1.dequeues, 1u);
  EXPECT_GE(s2.dequeues, 2u);
  EXPECT_GT(s2.row_reuses, 0u) << "hub row published first must be reused";
}

// ---------- weighted analysis metrics ----------

TEST(GoldenAnalysis, WeightedPathMetrics) {
  // 0 -2- 1 -3- 2: distances 0-2: 5.
  graph::GraphBuilder<std::uint32_t> b(Directedness::kUndirected);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 2, 3);
  const auto D = apsp::floyd_warshall(b.build());
  EXPECT_EQ(analysis::diameter(D), 5u);
  EXPECT_EQ(analysis::radius(D), 3u);
  // Ordered pairs: (0,1)=2 (0,2)=5 (1,2)=3 and mirrors -> mean = 10/3.
  EXPECT_NEAR(analysis::average_path_length(D), 10.0 / 3.0, 1e-12);
  const auto hist = analysis::distance_histogram(D);
  ASSERT_EQ(hist.size(), 6u);
  EXPECT_EQ(hist[2], 2u);
  EXPECT_EQ(hist[3], 2u);
  EXPECT_EQ(hist[5], 2u);
}

TEST(GoldenAnalysis, WeightedClosenessOrdering) {
  // Heavier edges push closeness down: middle of a weighted path still wins.
  graph::GraphBuilder<std::uint32_t> b(Directedness::kUndirected);
  b.add_edge(0, 1, 4);
  b.add_edge(1, 2, 4);
  const auto D = apsp::floyd_warshall(b.build());
  const auto cc = analysis::closeness_centrality(D);
  EXPECT_GT(cc[1], cc[0]);
  EXPECT_GT(cc[1], cc[2]);
  EXPECT_DOUBLE_EQ(cc[0], cc[2]);
}

TEST(GoldenAnalysis, BetweennessWeightedReroutesAroundHeavyEdge) {
  // Square 0-1-2-3-0; edge 0-3 heavy (10), others 1. All 0<->3 traffic goes
  // through 1 and 2, giving them betweenness; the heavy edge carries none.
  graph::GraphBuilder<std::uint32_t> b(Directedness::kUndirected);
  b.add_edge(0, 1, 1);
  b.add_edge(1, 2, 1);
  b.add_edge(2, 3, 1);
  b.add_edge(3, 0, 10);
  const auto bc = analysis::betweenness_centrality(b.build());
  EXPECT_GT(bc[1], 0.0);
  EXPECT_GT(bc[2], 0.0);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[3], 0.0);
}

// ---------- isolated / offbeat structures through the full stack ----------

TEST(Golden, IsolatedHighIdVertex) {
  graph::GraphBuilder<std::uint32_t> b(Directedness::kUndirected);
  b.add_edge(0, 1);
  b.reserve_vertices(50);  // vertices 2..49 isolated
  const auto g = b.build();
  const auto D = apsp::par_apsp(g).distances;
  EXPECT_EQ(D.at(0, 1), 1u);
  EXPECT_TRUE(is_infinite(D.at(0, 49)));
  EXPECT_EQ(D.at(49, 49), 0u);
  EXPECT_TRUE(apsp::verify_distances(g, D).ok());
}

TEST(Golden, TwoStarsBridged) {
  // Hubs 0 and 1 with 10 leaves each, bridge 0-1: classic barbell-ish case
  // where both hubs should be processed first by every exact ordering.
  graph::GraphBuilder<std::uint32_t> b(Directedness::kUndirected);
  for (VertexId leaf = 2; leaf < 12; ++leaf) b.add_edge(0, leaf);
  for (VertexId leaf = 12; leaf < 22; ++leaf) b.add_edge(1, leaf);
  b.add_edge(0, 1);
  const auto g = b.build();
  const auto order = order::multilists_order(g.degrees());
  EXPECT_TRUE((order[0] == 0 && order[1] == 1) || (order[0] == 1 && order[1] == 0));
  const auto D = apsp::par_apsp(g).distances;
  EXPECT_EQ(D.at(2, 12), 3u);  // leaf -> hub -> hub -> leaf
  EXPECT_EQ(analysis::diameter(D), 3u);
}

}  // namespace
