// Larger-scale stress tests: sizes past the unit-test range, exercising the
// parallel paths under oversubscription and the ordering procedures on
// million-element inputs. Kept to a few seconds total.
#include <gtest/gtest.h>

#include "apsp/verify.hpp"
#include "test_helpers.hpp"

namespace {

using namespace parapsp;

TEST(Stress, ParApspOnMidSizeScaleFreeGraph) {
  const auto raw = graph::barabasi_albert<std::uint32_t>(1500, 4, 71);
  const auto g = graph::relabel(raw, graph::random_permutation(1500, 72));
  util::ThreadScope scope(4);
  const auto result = apsp::par_apsp(g);
  const auto report = apsp::verify_distances(g, result.distances, 10, 73);
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_GT(result.kernel.row_reuses, 0u);
}

TEST(Stress, MultiListsOnMillionElements) {
  // Ordering procedures are O(n); a million-degree array must sort exactly
  // and match the sequential counting sort.
  const auto g = graph::barabasi_albert<std::uint32_t>(1'000'000, 3, 74);
  const auto degrees = g.degrees();
  const auto ml = order::multilists_order(degrees);
  EXPECT_TRUE(order::is_descending_degree_order(ml, degrees));
  EXPECT_EQ(ml, order::counting_order(degrees));
}

TEST(Stress, ParMaxOnMillionElements) {
  const auto g = graph::barabasi_albert<std::uint32_t>(1'000'000, 3, 75);
  const auto degrees = g.degrees();
  const auto pm = order::parmax_order(degrees);
  EXPECT_TRUE(order::is_permutation_of_vertices(pm, degrees.size()));
  EXPECT_TRUE(order::is_descending_degree_order(pm, degrees));
}

TEST(Stress, RangeSortHalfMillion) {
  util::Xoshiro256 rng(76);
  std::vector<std::uint32_t> values(500'000);
  for (auto& v : values) v = static_cast<std::uint32_t>(rng.bounded(4096));
  auto want = values;
  std::sort(want.begin(), want.end());
  util::ThreadScope scope(4);
  EXPECT_EQ(order::parallel_range_sort_values(values, 4096), want);
}

TEST(Stress, DenseGraphThroughEveryParallelAlgorithm) {
  // A dense-ish graph (avg degree ~40) pushes the row-reuse fast path hard.
  const auto raw = graph::barabasi_albert<std::uint32_t>(700, 20, 77);
  const auto g = graph::relabel(raw, graph::random_permutation(700, 78));
  const auto want = apsp::floyd_warshall(g);
  util::ThreadScope scope(3);
  parapsp::testing::expect_same_distances(apsp::par_alg1(g).distances, want, "alg1");
  parapsp::testing::expect_same_distances(apsp::par_alg2(g).distances, want, "alg2");
  parapsp::testing::expect_same_distances(apsp::par_apsp(g).distances, want, "apsp");
}

TEST(Stress, RepeatedSolvesShareNoState) {
  // Back-to-back solves on different graphs must not leak state through any
  // global (schedule scope, thread settings, ...).
  const auto g1 = graph::barabasi_albert<std::uint32_t>(300, 3, 79);
  const auto g2 = graph::erdos_renyi_gnm<std::uint32_t>(250, 900, 80);
  const auto w1 = apsp::floyd_warshall(g1);
  const auto w2 = apsp::floyd_warshall(g2);
  for (int round = 0; round < 3; ++round) {
    parapsp::testing::expect_same_distances(apsp::par_apsp(g1).distances, w1, "g1");
    parapsp::testing::expect_same_distances(
        apsp::par_alg2(g2, apsp::Schedule::kBlock).distances, w2, "g2");
  }
}

}  // namespace
