// Tests for the modified-Dijkstra kernel (Algorithm 1) in isolation: row
// correctness, row-reuse behavior, flag protocol, and the adaptive credit
// signal.
#include <gtest/gtest.h>

#include "apsp/flags.hpp"
#include "apsp/modified_dijkstra.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "sssp/dijkstra.hpp"

namespace {

using namespace parapsp;
using namespace parapsp::apsp;

template <typename W>
DistanceMatrix<W> fresh_matrix(VertexId n) {
  return DistanceMatrix<W>(n);
}

TEST(ModifiedDijkstra, RowMatchesDijkstraNoPriorRows) {
  const auto g = graph::barabasi_albert<std::uint32_t>(150, 3, 1);
  auto D = fresh_matrix<std::uint32_t>(g.num_vertices());
  FlagArray flags(g.num_vertices());
  DijkstraWorkspace ws;
  ws.resize(g.num_vertices());

  const auto stats = modified_dijkstra(g, 7, D, flags, ws);
  const auto want = sssp::dijkstra(g, 7);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(D.at(7, v), want[v]) << "v=" << v;
  }
  EXPECT_TRUE(flags.is_complete(7));
  EXPECT_EQ(stats.row_reuses, 0u);  // nothing published yet
  EXPECT_GT(stats.edge_relaxations, 0u);
}

TEST(ModifiedDijkstra, ReusesPublishedRows) {
  const auto g = graph::barabasi_albert<std::uint32_t>(200, 4, 2);
  auto D = fresh_matrix<std::uint32_t>(g.num_vertices());
  FlagArray flags(g.num_vertices());
  DijkstraWorkspace ws;
  ws.resize(g.num_vertices());

  // Publish the hub's row first (vertex with max degree).
  VertexId hub = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.degree(v) > g.degree(hub)) hub = v;
  }
  (void)modified_dijkstra(g, hub, D, flags, ws);

  const VertexId s = (hub + 1) % g.num_vertices();
  const auto stats = modified_dijkstra(g, s, D, flags, ws);
  EXPECT_GT(stats.row_reuses, 0u) << "hub row should be reused";

  const auto want = sssp::dijkstra(g, s);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_EQ(D.at(s, v), want[v]) << "v=" << v;
  }
}

TEST(ModifiedDijkstra, ReuseShrinksWork) {
  // Processing all sources hub-first must do fewer edge relaxations than
  // processing in an adversarial (ascending-degree) order — the mechanism
  // behind Algorithm 3's win.
  const auto g = graph::barabasi_albert<std::uint32_t>(400, 4, 3);
  const auto degrees = g.degrees();

  auto run_total = [&](std::vector<VertexId> order) {
    auto D = fresh_matrix<std::uint32_t>(g.num_vertices());
    FlagArray flags(g.num_vertices());
    DijkstraWorkspace ws;
    ws.resize(g.num_vertices());
    std::uint64_t relaxations = 0;
    for (const auto s : order) {
      relaxations += modified_dijkstra(g, s, D, flags, ws).edge_relaxations;
    }
    return relaxations;
  };

  std::vector<VertexId> desc(g.num_vertices()), asc(g.num_vertices());
  std::iota(desc.begin(), desc.end(), VertexId{0});
  std::sort(desc.begin(), desc.end(),
            [&](VertexId a, VertexId b) { return degrees[a] > degrees[b]; });
  asc.assign(desc.rbegin(), desc.rend());

  EXPECT_LT(run_total(desc), run_total(asc));
}

TEST(ModifiedDijkstra, DisconnectedRowsStayInfinite) {
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kUndirected, 6);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const auto g = b.build();
  auto D = fresh_matrix<std::uint32_t>(6);
  FlagArray flags(6);
  DijkstraWorkspace ws;
  ws.resize(6);
  (void)modified_dijkstra(g, 0, D, flags, ws);
  EXPECT_EQ(D.at(0, 1), 1u);
  EXPECT_TRUE(is_infinite(D.at(0, 2)));
  EXPECT_TRUE(is_infinite(D.at(0, 5)));
}

TEST(ModifiedDijkstra, CreditAccruesToIntermediates) {
  // Star: all paths leaf->leaf pass through the hub, so expanding any leaf
  // credits the hub.
  const auto g = graph::star_graph<std::uint32_t>(10);
  auto D = fresh_matrix<std::uint32_t>(10);
  FlagArray flags(10);
  DijkstraWorkspace ws;
  ws.resize(10);
  std::vector<std::uint64_t> credit(10, 0);
  (void)modified_dijkstra(g, 3, D, flags, ws, &credit);  // a leaf source
  EXPECT_GT(credit[0], 0u) << "hub must collect credit";
  EXPECT_EQ(credit[3], 0u) << "source never credits itself";
}

TEST(ModifiedDijkstra, WorkspaceReuseAcrossSourcesIsClean) {
  const auto g = graph::erdos_renyi_gnm<std::uint32_t>(100, 300, 4);
  auto D = fresh_matrix<std::uint32_t>(100);
  FlagArray flags(100);
  DijkstraWorkspace ws;
  ws.resize(100);
  for (VertexId s = 0; s < 100; ++s) {
    (void)modified_dijkstra(g, s, D, flags, ws);
    const auto want = sssp::dijkstra(g, s);
    for (VertexId v = 0; v < 100; ++v) {
      ASSERT_EQ(D.at(s, v), want[v]) << "s=" << s << " v=" << v;
    }
  }
}

TEST(Flags, ProtocolBasics) {
  FlagArray flags(4);
  EXPECT_FALSE(flags.is_complete(0));
  flags.publish(0);
  flags.publish(2);
  EXPECT_TRUE(flags.is_complete(0));
  EXPECT_FALSE(flags.is_complete(1));
  EXPECT_EQ(flags.count_complete(), 2u);
  flags.reset();
  EXPECT_EQ(flags.count_complete(), 0u);
}

TEST(DistanceMatrixType, BasicsAndComparison) {
  DistanceMatrix<std::uint32_t> a(3), b(3);
  EXPECT_EQ(a, b);
  a.at(1, 2) = 7;
  EXPECT_FALSE(a == b);
  VertexId u = 99, v = 99;
  EXPECT_TRUE(a.first_difference(b, u, v).value());
  EXPECT_EQ(u, 1u);
  EXPECT_EQ(v, 2u);
  // Rows are padded out to the SIMD stride, so the physical footprint is
  // stride-based; the logical row length is still size().
  EXPECT_GE(a.stride(), a.size());
  EXPECT_EQ(a.bytes(), a.size() * a.stride() * sizeof(std::uint32_t));
  a.reset();
  EXPECT_EQ(a, b);
}

TEST(DistanceMatrixType, SizeMismatchIsTypedError) {
  DistanceMatrix<std::uint32_t> a(3), b(4);
  VertexId u, v;
  const auto r = a.first_difference(b, u, v);
  ASSERT_FALSE(r.has_value());
  EXPECT_EQ(r.status().code(), util::ErrorCode::kInvalidArgument);
}

}  // namespace
