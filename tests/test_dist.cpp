// Tests for the simulated distributed-memory ParAPSP (the paper's future
// work): exactness across every configuration, communication accounting,
// sharing-policy work ordering, and partitioning/load-balance.
#include <gtest/gtest.h>

#include "dist/dist_apsp.hpp"
#include "test_helpers.hpp"

namespace {

using namespace parapsp;
using dist::DistOptions;
using dist::PartitionScheme;
using dist::SharingPolicy;

// ---------- partitioning ----------

TEST(Partition, CyclicDealsRoundRobin) {
  const order::Ordering order{10, 11, 12, 13, 14};
  const auto a = dist::partition_sources(order, 2, PartitionScheme::kCyclic);
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], (std::vector<VertexId>{10, 12, 14}));
  EXPECT_EQ(a[1], (std::vector<VertexId>{11, 13}));
}

TEST(Partition, BlockSlices) {
  const order::Ordering order{1, 2, 3, 4, 5};
  const auto a = dist::partition_sources(order, 2, PartitionScheme::kBlock);
  EXPECT_EQ(a[0], (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(a[1], (std::vector<VertexId>{4, 5}));
}

TEST(Partition, MoreRanksThanSources) {
  const order::Ordering order{7};
  const auto a = dist::partition_sources(order, 4, PartitionScheme::kCyclic);
  EXPECT_EQ(a[0], (std::vector<VertexId>{7}));
  for (int r = 1; r < 4; ++r) EXPECT_TRUE(a[static_cast<std::size_t>(r)].empty());
}

TEST(Partition, RejectsZeroRanks) {
  EXPECT_THROW((void)dist::partition_sources({}, 0, PartitionScheme::kCyclic),
               std::invalid_argument);
}

TEST(Partition, LoadBalanceStats) {
  const auto a = dist::partition_sources(order::identity_order(10), 3,
                                         PartitionScheme::kCyclic);
  const auto lb = dist::load_balance(a);
  EXPECT_EQ(lb.max_sources, 4u);
  EXPECT_EQ(lb.min_sources, 3u);
  EXPECT_NEAR(lb.mean_sources, 10.0 / 3.0, 1e-12);
  EXPECT_NEAR(lb.imbalance(), 4.0 / (10.0 / 3.0), 1e-12);
}

// ---------- exactness across the configuration space ----------

struct DistCase {
  std::string name;
  DistOptions opts;
};

class DistExactness : public ::testing::TestWithParam<DistCase> {};

TEST_P(DistExactness, MatchesFloydWarshall) {
  const auto g = parapsp::testing::make_graph(
      {"ba", parapsp::testing::GraphCase::Family::kBA, 180, 3,
       graph::Directedness::kUndirected, false, 91});
  const auto want = apsp::floyd_warshall(g);
  const auto result = dist::dist_apsp_simulate(g, GetParam().opts);
  parapsp::testing::expect_same_distances(result.distances, want, GetParam().name);
  // Every source dequeues at least once.
  EXPECT_GE(result.total_work.dequeues, static_cast<std::uint64_t>(g.num_vertices()));
}

INSTANTIATE_TEST_SUITE_P(
    Configs, DistExactness,
    ::testing::Values(
        DistCase{"ranks1", {.ranks = 1, .batch = 8, .sharing = SharingPolicy::kBroadcast}},
        DistCase{"ranks2_none", {.ranks = 2, .batch = 4, .sharing = SharingPolicy::kNone}},
        DistCase{"ranks4_bcast", {.ranks = 4, .batch = 8, .sharing = SharingPolicy::kBroadcast}},
        DistCase{"ranks4_ring", {.ranks = 4, .batch = 8, .sharing = SharingPolicy::kRing}},
        DistCase{"ranks7_batch1", {.ranks = 7, .batch = 1, .sharing = SharingPolicy::kBroadcast}},
        DistCase{"ranks3_block",
                 {.ranks = 3, .batch = 16, .sharing = SharingPolicy::kBroadcast,
                  .partition = PartitionScheme::kBlock}},
        DistCase{"ranks16_small_ring", {.ranks = 16, .batch = 2, .sharing = SharingPolicy::kRing}}),
    [](const ::testing::TestParamInfo<DistCase>& info) { return info.param.name; });

// ---------- accounting and policy semantics ----------

TEST(DistApsp, NoSharingMovesNoBytes) {
  const auto g = graph::barabasi_albert<std::uint32_t>(120, 3, 92);
  const auto r = dist::dist_apsp_simulate(
      g, {.ranks = 4, .batch = 4, .sharing = SharingPolicy::kNone});
  EXPECT_EQ(r.comm.messages, 0u);
  EXPECT_EQ(r.comm.bytes, 0u);
  // Each rank ends up holding exactly the rows it computed.
  std::uint64_t held = 0;
  for (const auto h : r.rows_held) held += h;
  EXPECT_EQ(held, g.num_vertices());
}

TEST(DistApsp, BroadcastDeliversEverythingEverywhere) {
  const auto g = graph::barabasi_albert<std::uint32_t>(120, 3, 93);
  const auto r = dist::dist_apsp_simulate(
      g, {.ranks = 4, .batch = 4, .sharing = SharingPolicy::kBroadcast});
  const auto n = static_cast<std::uint64_t>(g.num_vertices());
  // Every row broadcast to 3 peers.
  EXPECT_EQ(r.comm.messages, n * 3);
  EXPECT_EQ(r.comm.bytes, n * 3 * n * sizeof(std::uint32_t));
  for (const auto h : r.rows_held) EXPECT_EQ(h, n);
}

TEST(DistApsp, RingCostsAtMostBroadcast) {
  const auto g = graph::barabasi_albert<std::uint32_t>(150, 3, 94);
  const auto ring = dist::dist_apsp_simulate(
      g, {.ranks = 5, .batch = 4, .sharing = SharingPolicy::kRing});
  const auto bcast = dist::dist_apsp_simulate(
      g, {.ranks = 5, .batch = 4, .sharing = SharingPolicy::kBroadcast});
  EXPECT_LE(ring.comm.bytes, bcast.comm.bytes);
  EXPECT_GT(ring.comm.bytes, 0u);
  // Ring pays more supersteps for its cheaper traffic.
  EXPECT_GE(ring.comm.supersteps, bcast.comm.supersteps);
}

TEST(DistApsp, SharingReducesWork) {
  // The future-work version of the paper's core effect: visibility of
  // other ranks' rows cuts edge relaxations.
  const auto g = graph::barabasi_albert<std::uint32_t>(300, 4, 95);
  const auto none = dist::dist_apsp_simulate(
      g, {.ranks = 4, .batch = 4, .sharing = SharingPolicy::kNone});
  const auto bcast = dist::dist_apsp_simulate(
      g, {.ranks = 4, .batch = 4, .sharing = SharingPolicy::kBroadcast});
  EXPECT_LT(bcast.total_work.edge_relaxations, none.total_work.edge_relaxations);
  // Note: raw row-reuse *event* counts go the other way — unshared searches
  // are much longer and re-hit the rank's own rows repeatedly — so the
  // meaningful comparison is the relaxation work above, plus reuse density:
  const double bcast_density = static_cast<double>(bcast.total_work.row_reuses) /
                               static_cast<double>(bcast.total_work.dequeues);
  const double none_density = static_cast<double>(none.total_work.row_reuses) /
                              static_cast<double>(none.total_work.dequeues);
  EXPECT_GT(bcast_density, none_density);
}

TEST(DistApsp, SmallerBatchesShareSooner) {
  const auto g = graph::barabasi_albert<std::uint32_t>(300, 4, 96);
  const auto fine = dist::dist_apsp_simulate(
      g, {.ranks = 4, .batch = 1, .sharing = SharingPolicy::kBroadcast});
  const auto coarse = dist::dist_apsp_simulate(
      g, {.ranks = 4, .batch = 64, .sharing = SharingPolicy::kBroadcast});
  EXPECT_LE(fine.total_work.edge_relaxations, coarse.total_work.edge_relaxations);
  EXPECT_GT(fine.comm.supersteps, coarse.comm.supersteps);
}

TEST(DistApsp, SingleRankMatchesSequentialWork) {
  const auto g = graph::barabasi_albert<std::uint32_t>(200, 3, 97);
  const auto one = dist::dist_apsp_simulate(
      g, {.ranks = 1, .batch = 32, .sharing = SharingPolicy::kBroadcast});
  EXPECT_EQ(one.comm.messages, 0u);  // broadcast to zero peers
  const auto seq = apsp::peng_optimized(g);
  // Same order (multilists vs selection differ only in ties) -> work within
  // a few percent.
  const double ratio =
      static_cast<double>(one.total_work.edge_relaxations) /
      static_cast<double>(seq.kernel.edge_relaxations);
  EXPECT_NEAR(ratio, 1.0, 0.05);
}

TEST(DistApsp, DeterministicAcrossRuns) {
  const auto g = graph::rmat<std::uint32_t>(7, 500, 98);
  const DistOptions opts{.ranks = 3, .batch = 5, .sharing = SharingPolicy::kRing};
  const auto a = dist::dist_apsp_simulate(g, opts);
  const auto b = dist::dist_apsp_simulate(g, opts);
  EXPECT_EQ(a.distances, b.distances);
  EXPECT_EQ(a.comm.messages, b.comm.messages);
  EXPECT_EQ(a.comm.bytes, b.comm.bytes);
  EXPECT_EQ(a.total_work.edge_relaxations, b.total_work.edge_relaxations);
}

TEST(DistApsp, MoreRanksThanSourcesStaysExact) {
  // 12 ranks, 5 sources: most ranks own nothing; the empty ranks must not
  // deadlock a superstep or corrupt the result.
  const auto g = graph::path_graph<std::uint32_t>(5);
  const auto want = apsp::floyd_warshall(g);
  const auto r = dist::dist_apsp_simulate(
      g, {.ranks = 12, .batch = 4, .sharing = SharingPolicy::kBroadcast});
  parapsp::testing::expect_same_distances(r.distances, want, "ranks12_n5");
}

TEST(DistApsp, BatchLargerThanRankShareIsOneSuperstep) {
  // batch 1000 vs ~30 sources per rank: each rank finishes its entire share
  // in its first batch, so the run is a single exchange round.
  const auto g = graph::barabasi_albert<std::uint32_t>(90, 3, 99);
  const auto want = apsp::floyd_warshall(g);
  const auto r = dist::dist_apsp_simulate(
      g, {.ranks = 3, .batch = 1000, .sharing = SharingPolicy::kBroadcast});
  parapsp::testing::expect_same_distances(r.distances, want, "huge_batch");
  EXPECT_EQ(r.comm.supersteps, 1u);
}

TEST(DistApsp, SingleRankBitIdenticalToPlainSweep) {
  // One rank, no communication: the simulation collapses to the plain
  // multilists sweep and must be bit-for-bit identical to it.
  const auto g = graph::barabasi_albert<std::uint32_t>(160, 3, 101);
  const auto sweep = apsp::par_apsp(g);
  const auto one = dist::dist_apsp_simulate(
      g, {.ranks = 1, .batch = 16, .sharing = SharingPolicy::kBroadcast});
  EXPECT_EQ(one.distances, sweep.distances);
  EXPECT_EQ(one.comm.bytes, 0u);
}

TEST(DistApsp, RejectsBadOptions) {
  const auto g = graph::path_graph<std::uint32_t>(4);
  EXPECT_THROW((void)dist::dist_apsp_simulate(g, {.ranks = 0}), std::invalid_argument);
  EXPECT_THROW((void)dist::dist_apsp_simulate(g, {.ranks = 2, .batch = 0}),
               std::invalid_argument);
}

TEST(DistApsp, EmptyGraph) {
  const graph::Graph<std::uint32_t> g;
  const auto r = dist::dist_apsp_simulate(g, {.ranks = 3});
  EXPECT_EQ(r.distances.size(), 0u);
  EXPECT_EQ(r.comm.supersteps, 0u);
}

}  // namespace
