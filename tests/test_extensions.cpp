// Tests for the extension modules: delta-stepping SSSP and the row-reuse
// ablation variants of ParAPSP.
#include <gtest/gtest.h>

#include "apsp/reuse_ablation.hpp"
#include "test_helpers.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"

namespace {

using namespace parapsp;

// ---------- delta-stepping ----------

TEST(DeltaStepping, MatchesDijkstraUnitWeights) {
  const auto g = graph::barabasi_albert<std::uint32_t>(300, 3, 61);
  for (const VertexId s : {VertexId{0}, VertexId{150}, VertexId{299}}) {
    EXPECT_EQ(sssp::delta_stepping(g, s), sssp::dijkstra(g, s)) << "s=" << s;
  }
}

TEST(DeltaStepping, MatchesDijkstraWeighted) {
  auto g = graph::erdos_renyi_gnm<std::uint32_t>(200, 800, 62);
  g = graph::randomize_weights<std::uint32_t>(g, 1, 50, 63);
  for (const VertexId s : {VertexId{0}, VertexId{99}}) {
    EXPECT_EQ(sssp::delta_stepping(g, s), sssp::dijkstra(g, s)) << "s=" << s;
  }
}

TEST(DeltaStepping, DeltaSweepAllExact) {
  auto g = graph::erdos_renyi_gnm<std::uint32_t>(150, 600, 64);
  g = graph::randomize_weights<std::uint32_t>(g, 1, 20, 65);
  const auto want = sssp::dijkstra(g, 5);
  for (const std::uint32_t delta : {1u, 3u, 10u, 100u, 10000u}) {
    EXPECT_EQ(sssp::delta_stepping(g, 5, delta), want) << "delta=" << delta;
  }
}

TEST(DeltaStepping, DirectedAndDisconnected) {
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kDirected, 5);
  b.add_edge(0, 1, 2);
  b.add_edge(1, 2, 3);
  const auto g = b.build();
  const auto d = sssp::delta_stepping(g, 0);
  EXPECT_EQ(d[2], 5u);
  EXPECT_TRUE(is_infinite(d[3]));
  EXPECT_TRUE(is_infinite(d[4]));
}

TEST(DeltaStepping, ZeroWeightEdges) {
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kDirected);
  b.add_edge(0, 1, 0);
  b.add_edge(1, 2, 0);
  b.add_edge(0, 2, 3);
  const auto d = sssp::delta_stepping(b.build(), 0, 2u);
  EXPECT_EQ(d[2], 0u);
}

TEST(DeltaStepping, DoubleWeights) {
  auto g = graph::erdos_renyi_gnm<double>(100, 350, 66);
  g = graph::randomize_weights<double>(g, 0.1, 3.0, 67);
  const auto want = sssp::dijkstra(g, 7);
  const auto got = sssp::delta_stepping(g, 7);
  for (VertexId v = 0; v < 100; ++v) {
    if (is_infinite(want[v])) {
      EXPECT_TRUE(is_infinite(got[v]));
    } else {
      EXPECT_NEAR(got[v], want[v], 1e-9);
    }
  }
}

TEST(DeltaStepping, SourceOutOfRangeThrows) {
  const auto g = graph::path_graph<std::uint32_t>(3);
  EXPECT_THROW((void)sssp::delta_stepping(g, 9), std::out_of_range);
}

TEST(DeltaStepping, DefaultDeltaReasonable) {
  auto g = graph::erdos_renyi_gnm<std::uint32_t>(50, 150, 68);
  g = graph::randomize_weights<std::uint32_t>(g, 4, 6, 69);
  const auto delta = sssp::default_delta(g);
  EXPECT_GE(delta, 4u);
  EXPECT_LE(delta, 6u);
}

class DeltaSteppingThreads : public ::testing::TestWithParam<int> {};

TEST_P(DeltaSteppingThreads, ThreadCountInvariant) {
  util::ThreadScope scope(GetParam());
  auto g = graph::barabasi_albert<std::uint32_t>(250, 4, 70);
  g = graph::randomize_weights<std::uint32_t>(g, 1, 9, 71);
  EXPECT_EQ(sssp::delta_stepping(g, 0), sssp::dijkstra(g, 0));
}

INSTANTIATE_TEST_SUITE_P(Threads, DeltaSteppingThreads, ::testing::Values(1, 2, 4, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "t" + std::to_string(info.param);
                         });

// ---------- reuse ablation ----------

TEST(ReuseAblation, AllVariantsExact) {
  const auto g = parapsp::testing::make_graph(
      {"ba", parapsp::testing::GraphCase::Family::kBA, 200, 3,
       graph::Directedness::kUndirected, false, 72});
  const auto want = apsp::floyd_warshall(g);
  parapsp::testing::expect_same_distances(apsp::par_apsp_no_reuse(g).distances, want,
                                          "no reuse");
  parapsp::testing::expect_same_distances(apsp::par_apsp_private_reuse(g).distances,
                                          want, "private reuse");
}

TEST(ReuseAblation, NoReuseNeverHitsTheReuseBranch) {
  const auto g = graph::barabasi_albert<std::uint32_t>(150, 3, 73);
  const auto result = apsp::par_apsp_no_reuse(g);
  EXPECT_EQ(result.kernel.row_reuses, 0u);
}

TEST(ReuseAblation, WorkOrdering) {
  // Full sharing <= private reuse <= no reuse, in edge relaxations — the
  // mechanism behind the paper's hyper-linear speedup conjecture.
  util::ThreadScope scope(4);
  const auto g = graph::barabasi_albert<std::uint32_t>(500, 4, 74);
  const auto full = apsp::par_apsp(g);
  const auto priv = apsp::par_apsp_private_reuse(g);
  const auto none = apsp::par_apsp_no_reuse(g);
  // Dynamic scheduling makes the exact counts run-dependent; full sharing
  // must be within noise of private reuse and both far below no reuse.
  EXPECT_LE(full.kernel.edge_relaxations,
            priv.kernel.edge_relaxations + priv.kernel.edge_relaxations / 10);
  EXPECT_LT(priv.kernel.edge_relaxations, none.kernel.edge_relaxations);
  EXPECT_GT(full.kernel.row_reuses, 0u);
}

TEST(ReuseAblation, PrivateReuseStillBenefits) {
  util::ThreadScope scope(2);
  const auto g = graph::barabasi_albert<std::uint32_t>(400, 4, 75);
  const auto priv = apsp::par_apsp_private_reuse(g);
  const auto none = apsp::par_apsp_no_reuse(g);
  EXPECT_GT(priv.kernel.row_reuses, 0u);
  EXPECT_LT(priv.kernel.edge_relaxations, none.kernel.edge_relaxations);
}

}  // namespace
