// Unit + property tests for graph/generators.hpp.
//
// Includes the scale-free shape checks DESIGN.md leans on: the BA/R-MAT
// substitutes for the paper's SNAP datasets must exhibit power-law degree
// skew (that skew is what drives every mechanism the paper measures).
#include <gtest/gtest.h>

#include "analysis/degree_distribution.hpp"
#include "graph/components.hpp"
#include "graph/generators.hpp"
#include "graph/validation.hpp"

namespace {

using namespace parapsp;
using namespace parapsp::graph;

// ---------- Erdős–Rényi ----------

TEST(ErdosRenyi, GnmExactEdgeCount) {
  const auto g = erdos_renyi_gnm<std::uint32_t>(100, 250, 1);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 250u);
  EXPECT_TRUE(validate(g).ok());
}

TEST(ErdosRenyi, GnmDirected) {
  const auto g = erdos_renyi_gnm<std::uint32_t>(50, 200, 2, Directedness::kDirected);
  EXPECT_TRUE(g.is_directed());
  EXPECT_EQ(g.num_edges(), 200u);
  EXPECT_TRUE(validate(g).ok());
}

TEST(ErdosRenyi, GnmDeterministicInSeed) {
  const auto a = erdos_renyi_gnm<std::uint32_t>(80, 150, 3);
  const auto b = erdos_renyi_gnm<std::uint32_t>(80, 150, 3);
  EXPECT_EQ(a.targets(), b.targets());
  EXPECT_EQ(a.offsets(), b.offsets());
  const auto c = erdos_renyi_gnm<std::uint32_t>(80, 150, 4);
  EXPECT_NE(a.targets(), c.targets());
}

TEST(ErdosRenyi, GnmRejectsOverfull) {
  EXPECT_THROW(erdos_renyi_gnm<std::uint32_t>(4, 7, 1), std::invalid_argument);
  // Complete graph is fine.
  const auto g = erdos_renyi_gnm<std::uint32_t>(4, 6, 1);
  EXPECT_EQ(g.num_edges(), 6u);
}

TEST(ErdosRenyi, GnpEdgeCountNearExpectation) {
  const VertexId n = 200;
  const double p = 0.1;
  const auto g = erdos_renyi_gnp<std::uint32_t>(n, p, 5);
  const double expected = p * n * (n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 0.15 * expected);
  EXPECT_TRUE(validate(g).ok());
}

TEST(ErdosRenyi, GnpEdgeCases) {
  EXPECT_EQ(erdos_renyi_gnp<std::uint32_t>(50, 0.0, 1).num_edges(), 0u);
  const auto full = erdos_renyi_gnp<std::uint32_t>(20, 1.0, 1);
  EXPECT_EQ(full.num_edges(), 190u);
  EXPECT_THROW(erdos_renyi_gnp<std::uint32_t>(10, 1.5, 1), std::invalid_argument);
}

TEST(ErdosRenyi, GnpDirectedHasNoSelfLoops) {
  const auto g = erdos_renyi_gnp<std::uint32_t>(60, 0.2, 6, Directedness::kDirected);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const auto v : g.neighbors(u)) EXPECT_NE(u, v);
  }
}

// ---------- Barabási–Albert ----------

TEST(BarabasiAlbert, SizeAndConnectivity) {
  const auto g = barabasi_albert<std::uint32_t>(500, 3, 7);
  EXPECT_EQ(g.num_vertices(), 500u);
  // m edges per new vertex + seed path.
  EXPECT_EQ(g.num_edges(), 3u + (500u - 4u) * 3u);
  EXPECT_TRUE(validate(g).ok());
  EXPECT_EQ(connected_components(g).count, 1u);
}

TEST(BarabasiAlbert, MinDegreeIsAttachment) {
  const auto g = barabasi_albert<std::uint32_t>(300, 4, 8);
  EXPECT_GE(g.min_degree(), 1u);
  // Newly attached vertices have degree >= m... except seed-path endpoints.
  // The *max* degree must be far above m on a scale-free graph.
  EXPECT_GT(g.max_degree(), 4u * 4u);
}

TEST(BarabasiAlbert, ScaleFreeShape) {
  const auto g = barabasi_albert<std::uint32_t>(20000, 4, 9);
  const auto dist = analysis::degree_distribution(g, /*xmin=*/8.0);
  // BA theory: alpha -> 3. MLE on finite samples lands in [2, 4].
  EXPECT_GT(dist.fit.alpha, 2.0) << "not heavy-tailed";
  EXPECT_LT(dist.fit.alpha, 4.2);
  // The skew the paper's Section 4.2 exploits: most vertices far below max.
  EXPECT_GT(dist.fraction_below(static_cast<VertexId>(0.1 * dist.max_degree)), 0.9);
}

TEST(BarabasiAlbert, RejectsBadParameters) {
  EXPECT_THROW(barabasi_albert<std::uint32_t>(5, 0, 1), std::invalid_argument);
  EXPECT_THROW(barabasi_albert<std::uint32_t>(3, 3, 1), std::invalid_argument);
}

TEST(BarabasiAlbert, Deterministic) {
  const auto a = barabasi_albert<std::uint32_t>(200, 3, 11);
  const auto b = barabasi_albert<std::uint32_t>(200, 3, 11);
  EXPECT_EQ(a.targets(), b.targets());
}

// ---------- Watts–Strogatz ----------

TEST(WattsStrogatz, NoRewireIsRingLattice) {
  const auto g = watts_strogatz<std::uint32_t>(30, 2, 0.0, 1);
  EXPECT_EQ(g.num_edges(), 60u);  // n*k
  for (VertexId v = 0; v < 30; ++v) EXPECT_EQ(g.degree(v), 4u);
  EXPECT_TRUE(validate(g).ok());
}

TEST(WattsStrogatz, RewirePreservesEdgeBudget) {
  const auto g = watts_strogatz<std::uint32_t>(100, 3, 0.3, 2);
  // Rewiring can only drop an edge on a rare duplicate collision.
  EXPECT_GE(g.num_edges(), 290u);
  EXPECT_LE(g.num_edges(), 300u);
  EXPECT_TRUE(validate(g).ok());
}

TEST(WattsStrogatz, RejectsBadParameters) {
  EXPECT_THROW(watts_strogatz<std::uint32_t>(10, 5, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(watts_strogatz<std::uint32_t>(10, 0, 0.1, 1), std::invalid_argument);
  EXPECT_THROW(watts_strogatz<std::uint32_t>(10, 2, 1.5, 1), std::invalid_argument);
}

// ---------- R-MAT ----------

TEST(Rmat, BasicShape) {
  const auto g = rmat<std::uint32_t>(8, 1000, 3);
  EXPECT_EQ(g.num_vertices(), 256u);
  EXPECT_TRUE(g.is_directed());
  // Duplicates are collapsed, so <= requested.
  EXPECT_LE(g.num_edges(), 1000u);
  EXPECT_GT(g.num_edges(), 500u);
  EXPECT_TRUE(validate(g).ok());
}

TEST(Rmat, SkewedDegrees) {
  const auto g = rmat<std::uint32_t>(12, 40000, 4);
  const auto dist = analysis::degree_distribution(g, 2.0);
  // Heavy-tailed: max degree far above mean.
  EXPECT_GT(dist.max_degree, 10 * dist.mean_degree);
}

TEST(Rmat, RejectsBadParameters) {
  EXPECT_THROW(rmat<std::uint32_t>(0, 10, 1), std::invalid_argument);
  EXPECT_THROW(rmat<std::uint32_t>(31, 10, 1), std::invalid_argument);
  EXPECT_THROW(rmat<std::uint32_t>(4, 10, 1, Directedness::kDirected, 0.5, 0.4, 0.4),
               std::invalid_argument);
}

// ---------- deterministic families ----------

TEST(Deterministic, PathGraph) {
  const auto g = path_graph<std::uint32_t>(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Deterministic, CycleGraph) {
  const auto g = cycle_graph<std::uint32_t>(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 2u);
}

TEST(Deterministic, CycleDegenerate) {
  EXPECT_EQ(cycle_graph<std::uint32_t>(2).num_edges(), 1u);  // no double edge
  EXPECT_EQ(cycle_graph<std::uint32_t>(1).num_edges(), 0u);
}

TEST(Deterministic, StarGraph) {
  const auto g = star_graph<std::uint32_t>(10);
  EXPECT_EQ(g.degree(0), 9u);
  for (VertexId v = 1; v < 10; ++v) EXPECT_EQ(g.degree(v), 1u);
}

TEST(Deterministic, CompleteGraph) {
  const auto g = complete_graph<std::uint32_t>(7);
  EXPECT_EQ(g.num_edges(), 21u);
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 6u);
}

TEST(Deterministic, GridGraph) {
  const auto g = grid_graph<std::uint32_t>(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3u + 2u * 4u);  // horizontal + vertical
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior (row 1, col 1)
}

}  // namespace
