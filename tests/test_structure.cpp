// Tests for analysis/structure.hpp (clustering, assortativity, k-core) and
// the configuration-model generator.
#include <gtest/gtest.h>

#include "analysis/structure.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/validation.hpp"

namespace {

using namespace parapsp;
using namespace parapsp::analysis;

// ---------- clustering ----------

TEST(Clustering, TriangleIsFullyClustered) {
  const auto g = graph::complete_graph<std::uint32_t>(3);
  for (const auto c : local_clustering(g)) EXPECT_DOUBLE_EQ(c, 1.0);
  EXPECT_DOUBLE_EQ(average_clustering(g), 1.0);
}

TEST(Clustering, TreeHasNone) {
  const auto g = graph::star_graph<std::uint32_t>(8);
  EXPECT_DOUBLE_EQ(average_clustering(g), 0.0);
}

TEST(Clustering, HandComputed) {
  // Square with one diagonal 0-2. Diagonal endpoints see 2 of their 3
  // neighbor pairs linked (1-2 and 2-3, but not 1-3): c = 2/3. The other
  // two vertices see their only neighbor pair linked by the diagonal: c = 1.
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kUndirected);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  b.add_edge(0, 2);
  const auto c = local_clustering(b.build());
  EXPECT_NEAR(c[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(c[2], 2.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  EXPECT_DOUBLE_EQ(c[3], 1.0);
}

TEST(Clustering, LowDegreeVerticesZero) {
  const auto g = graph::path_graph<std::uint32_t>(4);
  const auto c = local_clustering(g);
  EXPECT_DOUBLE_EQ(c[0], 0.0);  // degree 1
  EXPECT_DOUBLE_EQ(c[1], 0.0);  // degree 2 but neighbors not linked
}

TEST(Clustering, WattsStrogatzRingIsHigh) {
  // Ring lattice with k=2: c = 1/2 exactly for every vertex.
  const auto g = graph::watts_strogatz<std::uint32_t>(50, 2, 0.0, 1);
  for (const auto c : local_clustering(g)) EXPECT_NEAR(c, 0.5, 1e-12);
}

TEST(Clustering, SmallWorldBeatsRandom) {
  // The Watts-Strogatz signature: much higher clustering than an ER graph
  // of the same size/density.
  const auto ws = graph::watts_strogatz<std::uint32_t>(500, 4, 0.1, 2);
  const auto er = graph::erdos_renyi_gnm<std::uint32_t>(500, ws.num_edges(), 3);
  EXPECT_GT(average_clustering(ws), 3.0 * average_clustering(er));
}

// ---------- assortativity ----------

TEST(Assortativity, RangeAndDegenerate) {
  const auto g = graph::barabasi_albert<std::uint32_t>(300, 3, 4);
  const double r = degree_assortativity(g);
  EXPECT_GE(r, -1.0);
  EXPECT_LE(r, 1.0);
  // Regular graphs have zero degree variance -> convention 0.
  EXPECT_DOUBLE_EQ(degree_assortativity(graph::cycle_graph<std::uint32_t>(10)), 0.0);
  EXPECT_DOUBLE_EQ(degree_assortativity(graph::Graph<std::uint32_t>()), 0.0);
}

TEST(Assortativity, StarIsMaximallyDisassortative) {
  // Every edge links degree n-1 to degree 1: perfect negative correlation.
  const auto g = graph::star_graph<std::uint32_t>(10);
  EXPECT_NEAR(degree_assortativity(g), -1.0, 1e-9);
}

TEST(Assortativity, AssortativeConstruction) {
  // Two cliques of different sizes joined by nothing: within each clique all
  // degrees equal -> correlation undefined per-component but globally the
  // edges link equal degrees -> r = 1.
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kUndirected);
  // K3 on {0,1,2} (degree 2) and K4 on {3,4,5,6} (degree 3).
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  for (VertexId u = 3; u < 7; ++u) {
    for (VertexId v = u + 1; v < 7; ++v) b.add_edge(u, v);
  }
  EXPECT_NEAR(degree_assortativity(b.build()), 1.0, 1e-9);
}

// ---------- k-core ----------

TEST(KCore, CompleteGraph) {
  const auto g = graph::complete_graph<std::uint32_t>(5);
  for (const auto c : core_numbers(g)) EXPECT_EQ(c, 4u);
  EXPECT_EQ(degeneracy(g), 4u);
}

TEST(KCore, TreeIsOneCore) {
  const auto g = graph::star_graph<std::uint32_t>(10);
  for (const auto c : core_numbers(g)) EXPECT_EQ(c, 1u);
}

TEST(KCore, HandComputedOnion) {
  // K4 core {0,1,2,3} + a path 3-4-5 hanging off: core numbers 3,3,3,3,1,1.
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kUndirected);
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) b.add_edge(u, v);
  }
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  const auto core = core_numbers(b.build());
  EXPECT_EQ(core, (std::vector<VertexId>{3, 3, 3, 3, 1, 1}));
}

TEST(KCore, IsolatedVerticesZero) {
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kUndirected, 3);
  b.add_edge(0, 1);
  const auto core = core_numbers(b.build());
  EXPECT_EQ(core[2], 0u);
  EXPECT_EQ(core[0], 1u);
}

TEST(KCore, BaGraphDegeneracyEqualsM) {
  // BA with attachment m: peeling removes newest vertices (degree m) layer
  // by layer, so the degeneracy is exactly m.
  const auto g = graph::barabasi_albert<std::uint32_t>(400, 5, 6);
  EXPECT_EQ(degeneracy(g), 5u);
}

TEST(KCore, InvariantCoreLeqDegree) {
  const auto g = graph::rmat<std::uint32_t>(9, 2000, 7,
                                            graph::Directedness::kUndirected);
  const auto core = core_numbers(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(core[v], g.degree(v));
  }
}

// ---------- configuration model ----------

TEST(ConfigModel, ApproximatesDegreeSequence) {
  std::vector<VertexId> degrees{5, 4, 3, 3, 2, 2, 2, 1, 1, 1};
  const auto g = graph::configuration_model<std::uint32_t>(degrees, 8);
  ASSERT_EQ(g.num_vertices(), degrees.size());
  EXPECT_TRUE(graph::validate(g).ok());
  // Erased model: realized degree never exceeds requested.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_LE(g.degree(v), degrees[v]) << "v=" << v;
  }
}

TEST(ConfigModel, ReproducesShapeOfLargeSequence) {
  // Feed the degree sequence of a BA graph back through the configuration
  // model; the realized distribution must keep the heavy tail.
  const auto src = graph::barabasi_albert<std::uint32_t>(3000, 3, 9);
  const auto degrees = src.degrees();
  const auto g = graph::configuration_model<std::uint32_t>(degrees, 10);
  // Erasures cost a few percent of edges at most on this shape.
  EXPECT_GT(g.num_edges(), src.num_edges() * 9 / 10);
  EXPECT_GT(g.max_degree(), 30u);
  EXPECT_TRUE(graph::validate(g).ok());
}

TEST(ConfigModel, DeterministicInSeed) {
  std::vector<VertexId> degrees(50, 3);
  const auto a = graph::configuration_model<std::uint32_t>(degrees, 11);
  const auto b = graph::configuration_model<std::uint32_t>(degrees, 11);
  EXPECT_EQ(a.targets(), b.targets());
}

TEST(ConfigModel, EmptyAndZeroDegrees) {
  EXPECT_EQ(graph::configuration_model<std::uint32_t>({}, 1).num_vertices(), 0u);
  const auto g = graph::configuration_model<std::uint32_t>({0, 0, 0}, 2);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 0u);
}

}  // namespace
