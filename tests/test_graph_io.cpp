// Unit tests for graph I/O: SNAP/KONECT edge-list parsing, roundtrips, and
// the binary format.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"
#include "graph/io_binary.hpp"
#include "graph/io_edgelist.hpp"
#include "graph/ops.hpp"
#include "graph/validation.hpp"

namespace {

using namespace parapsp;
using namespace parapsp::graph;

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("parapsp_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

// ---------- parsing ----------

TEST(EdgeListParse, SnapStyle) {
  const auto data = parse_edge_list(
      "# Directed graph: example\n"
      "# Nodes: 3 Edges: 2\n"
      "10\t20\n"
      "20\t30\n");
  ASSERT_EQ(data.edges.size(), 2u);
  EXPECT_FALSE(data.weighted);
  EXPECT_EQ(data.edges[0].u, 10u);
  EXPECT_EQ(data.edges[0].v, 20u);
  EXPECT_DOUBLE_EQ(data.edges[0].w, 1.0);
}

TEST(EdgeListParse, KonectStyleWithWeights) {
  const auto data = parse_edge_list(
      "% sym weighted\n"
      "1 2 3.5\n"
      "2 3 0.5\n");
  ASSERT_EQ(data.edges.size(), 2u);
  EXPECT_TRUE(data.weighted);
  EXPECT_DOUBLE_EQ(data.edges[0].w, 3.5);
}

TEST(EdgeListParse, SkipsBlankLines) {
  const auto data = parse_edge_list("\n1 2\n\n  \n3 4\n");
  EXPECT_EQ(data.edges.size(), 2u);
}

TEST(EdgeListParse, MixedWhitespace) {
  const auto data = parse_edge_list("1\t 2\n3   4\t\n");
  ASSERT_EQ(data.edges.size(), 2u);
  EXPECT_EQ(data.edges[1].u, 3u);
}

TEST(EdgeListParse, ErrorsCarryLineNumbers) {
  try {
    (void)parse_edge_list("1 2\nbroken line\n");
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(":2:"), std::string::npos) << e.what();
  }
}

TEST(EdgeListParse, RejectsMissingTarget) {
  EXPECT_THROW((void)parse_edge_list("1\n"), std::runtime_error);
}

TEST(EdgeListParse, RejectsTrailingGarbage) {
  EXPECT_THROW((void)parse_edge_list("1 2 3.0 extra\n"), std::runtime_error);
}

TEST(EdgeListBuild, CompactsArbitraryIds) {
  const auto data = parse_edge_list("1000000 5\n5 42\n");
  std::unordered_map<std::uint64_t, VertexId> id_map;
  const auto g = build_from_edge_list<std::uint32_t>(
      data, Directedness::kDirected, DuplicatePolicy::kKeepMinWeight,
      SelfLoopPolicy::kDrop, &id_map);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(id_map.at(1000000), 0u);  // first-appearance order
  EXPECT_EQ(id_map.at(5), 1u);
  EXPECT_EQ(id_map.at(42), 2u);
}

TEST(EdgeListBuild, DefaultPoliciesCleanInput) {
  // Duplicates collapse, self-loops drop — what SNAP loaders do.
  const auto data = parse_edge_list("1 2\n1 2\n3 3\n2 1\n");
  const auto g = build_from_edge_list<std::uint32_t>(data, Directedness::kUndirected);
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.num_self_loops(), 0u);
}

// ---------- file roundtrip ----------

TEST_F(TempDir, EdgeListFileRoundtrip) {
  const auto g = barabasi_albert<std::uint32_t>(80, 3, 5);
  write_edge_list(g, path("g.txt"), {.comment = "roundtrip test"});
  const auto g2 = load_edge_list<std::uint32_t>(path("g.txt"), Directedness::kUndirected);
  EXPECT_EQ(g2.num_vertices(), g.num_vertices());
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  EXPECT_TRUE(validate(g2).ok());
}

TEST_F(TempDir, WeightedEdgeListRoundtrip) {
  auto g = erdos_renyi_gnm<std::uint32_t>(40, 80, 6);
  g = randomize_weights<std::uint32_t>(g, 2, 9, 7);
  write_edge_list(g, path("w.txt"));
  const auto g2 = load_edge_list<std::uint32_t>(path("w.txt"), Directedness::kUndirected);
  EXPECT_EQ(g2.num_edges(), g.num_edges());
  // Weight multiset preserved per vertex degree sequence; spot check totals.
  std::uint64_t sum1 = 0, sum2 = 0;
  for (const auto w : g.edge_weights()) sum1 += w;
  for (const auto w : g2.edge_weights()) sum2 += w;
  // Ids may be remapped but total arc weight is invariant.
  EXPECT_EQ(sum1, sum2);
}

TEST_F(TempDir, ReadMissingFileThrows) {
  EXPECT_THROW((void)read_edge_list(path("nope.txt")), std::runtime_error);
}

// ---------- binary format ----------

TEST_F(TempDir, BinaryRoundtripExact) {
  auto g = rmat<std::uint32_t>(7, 400, 8);
  save_binary(g, path("g.bin"));
  const auto g2 = load_binary<std::uint32_t>(path("g.bin"));
  EXPECT_EQ(g2.is_directed(), g.is_directed());
  EXPECT_EQ(g2.offsets(), g.offsets());
  EXPECT_EQ(g2.targets(), g.targets());
  EXPECT_EQ(g2.edge_weights(), g.edge_weights());
  EXPECT_EQ(g2.num_self_loops(), g.num_self_loops());
}

TEST_F(TempDir, BinaryRoundtripDoubleWeights) {
  auto g = erdos_renyi_gnm<double>(50, 120, 9);
  g = randomize_weights<double>(g, 0.1, 5.0, 10);
  save_binary(g, path("gd.bin"));
  const auto g2 = load_binary<double>(path("gd.bin"));
  EXPECT_EQ(g2.edge_weights(), g.edge_weights());
}

TEST_F(TempDir, BinaryWeightTypeMismatchRejected) {
  const auto g = path_graph<std::uint32_t>(4);
  save_binary(g, path("m.bin"));
  EXPECT_THROW((void)load_binary<double>(path("m.bin")), std::runtime_error);
}

TEST_F(TempDir, BinaryCorruptMagicRejected) {
  const auto g = path_graph<std::uint32_t>(4);
  save_binary(g, path("c.bin"));
  std::fstream f(path("c.bin"), std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(0);
  f.write("XXXX", 4);
  f.close();
  EXPECT_THROW((void)load_binary<std::uint32_t>(path("c.bin")), std::runtime_error);
}

TEST_F(TempDir, BinaryTruncationRejected) {
  const auto g = barabasi_albert<std::uint32_t>(50, 2, 11);
  save_binary(g, path("t.bin"));
  const auto full = std::filesystem::file_size(path("t.bin"));
  std::filesystem::resize_file(path("t.bin"), full / 2);
  EXPECT_THROW((void)load_binary<std::uint32_t>(path("t.bin")), std::runtime_error);
}

TEST_F(TempDir, BinaryMissingFileThrows) {
  EXPECT_THROW((void)load_binary<std::uint32_t>(path("missing.bin")), std::runtime_error);
}

}  // namespace
