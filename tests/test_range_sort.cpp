// Property tests for the generalized parallel fixed-range sort — the
// "general sorting purposes" claim of the paper's MultiLists procedure.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "order/range_sort.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"

namespace {

using namespace parapsp;
using namespace parapsp::order;

TEST(RangeSort, EmptyInput) {
  const std::vector<int> empty;
  EXPECT_TRUE(parallel_range_sort_values(empty, 10).empty());
  EXPECT_TRUE(parallel_range_sort_values(empty, 0).empty());
}

TEST(RangeSort, ZeroBoundWithItemsThrows) {
  EXPECT_THROW((void)parallel_range_sort_values(std::vector<int>{1}, 0),
               std::invalid_argument);
}

TEST(RangeSort, AscendingMatchesStdSort) {
  util::Xoshiro256 rng(1);
  std::vector<std::uint32_t> values(5000);
  for (auto& v : values) v = static_cast<std::uint32_t>(rng.bounded(300));
  auto want = values;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(parallel_range_sort_values(values, 300), want);
}

TEST(RangeSort, DescendingMatchesStdSort) {
  util::Xoshiro256 rng(2);
  std::vector<std::uint32_t> values(5000);
  for (auto& v : values) v = static_cast<std::uint32_t>(rng.bounded(300));
  auto want = values;
  std::sort(want.begin(), want.end(), std::greater<>());
  EXPECT_EQ(parallel_range_sort_values(values, 300, SortDirection::kDescending), want);
}

TEST(RangeSort, StableOnStructs) {
  struct Record {
    int key;
    int payload;
    bool operator==(const Record&) const = default;
  };
  util::Xoshiro256 rng(3);
  std::vector<Record> records(3000);
  for (int i = 0; i < 3000; ++i) {
    records[static_cast<std::size_t>(i)] = {static_cast<int>(rng.bounded(20)), i};
  }
  auto want = records;
  std::stable_sort(want.begin(), want.end(),
                   [](const Record& a, const Record& b) { return a.key < b.key; });
  const auto got =
      parallel_range_sort(records, [](const Record& r) { return r.key; }, 20);
  EXPECT_EQ(got, want);
}

TEST(RangeSort, StableDescendingOnStructs) {
  struct Record {
    int key;
    int payload;
    bool operator==(const Record&) const = default;
  };
  std::vector<Record> records;
  for (int i = 0; i < 100; ++i) records.push_back({i % 5, i});
  auto want = records;
  std::stable_sort(want.begin(), want.end(),
                   [](const Record& a, const Record& b) { return a.key > b.key; });
  const auto got = parallel_range_sort(records, [](const Record& r) { return r.key; },
                                       5, SortDirection::kDescending);
  EXPECT_EQ(got, want);
}

TEST(RangeSort, SortsStringsByLength) {
  const std::vector<std::string> words{"dddd", "a", "ccc", "bb", "e", "ffff"};
  const auto got = parallel_range_sort(
      words, [](const std::string& s) { return s.size(); }, 5);
  const std::vector<std::string> want{"a", "e", "bb", "ccc", "dddd", "ffff"};
  EXPECT_EQ(got, want);
}

class RangeSortThreads : public ::testing::TestWithParam<int> {};

TEST_P(RangeSortThreads, ThreadCountInvariant) {
  util::Xoshiro256 rng(4);
  std::vector<std::uint32_t> values(20000);
  for (auto& v : values) v = static_cast<std::uint32_t>(rng.bounded(1000));
  auto want = values;
  std::sort(want.begin(), want.end());

  util::ThreadScope scope(GetParam());
  EXPECT_EQ(parallel_range_sort_values(values, 1000), want);
}

INSTANTIATE_TEST_SUITE_P(Threads, RangeSortThreads, ::testing::Values(1, 2, 3, 4, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "t" + std::to_string(info.param);
                         });

class RangeSortShapes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RangeSortShapes, KeyBoundSweep) {
  const std::size_t bound = GetParam();
  util::Xoshiro256 rng(bound);
  std::vector<std::uint64_t> values(4000);
  for (auto& v : values) v = rng.bounded(bound);
  auto want = values;
  std::sort(want.begin(), want.end());
  EXPECT_EQ(parallel_range_sort_values(values, bound), want);
}

INSTANTIATE_TEST_SUITE_P(Bounds, RangeSortShapes,
                         ::testing::Values(1, 2, 16, 255, 1024, 65536),
                         [](const ::testing::TestParamInfo<std::size_t>& info) {
                           return "bound" + std::to_string(info.param);
                         });

TEST(RangeSort, AllKeysEqual) {
  const std::vector<std::uint32_t> values(1000, 7);
  EXPECT_EQ(parallel_range_sort_values(values, 8), values);
}

TEST(RangeSort, SingleElement) {
  const std::vector<std::uint32_t> values{3};
  EXPECT_EQ(parallel_range_sort_values(values, 4), values);
}

}  // namespace
