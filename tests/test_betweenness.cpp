// Tests for Brandes betweenness centrality: closed-form graphs, brute-force
// cross-checks against path enumeration via the distance matrix, weighted
// graphs, and thread invariance.
#include <gtest/gtest.h>

#include "analysis/betweenness.hpp"
#include "apsp/floyd_warshall.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "util/parallel.hpp"

namespace {

using namespace parapsp;
using analysis::betweenness_centrality;

/// Brute-force betweenness from the distance matrix and path counts obtained
/// by dynamic programming over the shortest-path DAG (O(n^3) — test only).
template <typename W>
std::vector<double> brute_force_betweenness(const graph::Graph<W>& g) {
  const VertexId n = g.num_vertices();
  const auto D = apsp::floyd_warshall(g);

  // sigma[s][t]: number of shortest s-t paths.
  std::vector<std::vector<double>> sigma(n, std::vector<double>(n, 0.0));
  for (VertexId s = 0; s < n; ++s) {
    // Order targets by distance from s; count paths incrementally.
    std::vector<VertexId> targets;
    for (VertexId t = 0; t < n; ++t) {
      if (!is_infinite(D.at(s, t))) targets.push_back(t);
    }
    std::sort(targets.begin(), targets.end(),
              [&](VertexId a, VertexId b) { return D.at(s, a) < D.at(s, b); });
    sigma[s][s] = 1.0;
    for (const VertexId t : targets) {
      if (t == s) continue;
      // Paths into t arrive over an edge (u, t) with D(s,u) + w == D(s,t).
      for (VertexId u = 0; u < n; ++u) {
        if (is_infinite(D.at(s, u))) continue;
        const auto nb = g.neighbors(u);
        const auto ws = g.weights(u);
        for (std::size_t e = 0; e < nb.size(); ++e) {
          if (nb[e] == t && dist_add(D.at(s, u), ws[e]) == D.at(s, t)) {
            sigma[s][t] += sigma[s][u];
          }
        }
      }
    }
  }

  std::vector<double> score(n, 0.0);
  for (VertexId s = 0; s < n; ++s) {
    for (VertexId t = 0; t < n; ++t) {
      if (s == t || is_infinite(D.at(s, t)) || sigma[s][t] == 0.0) continue;
      for (VertexId v = 0; v < n; ++v) {
        if (v == s || v == t) continue;
        if (!is_infinite(D.at(s, v)) && !is_infinite(D.at(v, t)) &&
            dist_add(D.at(s, v), D.at(v, t)) == D.at(s, t)) {
          score[v] += sigma[s][v] * sigma[v][t] / sigma[s][t];
        }
      }
    }
  }
  if (!g.is_directed()) {
    for (auto& x : score) x /= 2.0;
  }
  return score;
}

TEST(Betweenness, PathGraphClosedForm) {
  // P5 (0-1-2-3-4): middle vertex lies on 2*... unordered pairs through it:
  // v=1: pairs {0}x{2,3,4} = 3; v=2: {0,1}x{3,4} = 4; symmetric.
  const auto g = graph::path_graph<std::uint32_t>(5);
  const auto bc = betweenness_centrality(g);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 3.0);
  EXPECT_DOUBLE_EQ(bc[2], 4.0);
  EXPECT_DOUBLE_EQ(bc[3], 3.0);
  EXPECT_DOUBLE_EQ(bc[4], 0.0);
}

TEST(Betweenness, StarGraphClosedForm) {
  // Hub lies on every leaf-leaf pair: C(7,2) = 21 for n=8.
  const auto g = graph::star_graph<std::uint32_t>(8);
  const auto bc = betweenness_centrality(g);
  EXPECT_DOUBLE_EQ(bc[0], 21.0);
  for (VertexId v = 1; v < 8; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.0);
}

TEST(Betweenness, CycleEvenSplitsTies) {
  // C6: for each pair at distance 3 there are two shortest paths; each
  // intermediate picks up fractional credit. Total per vertex: 3.5... use
  // vertex-transitivity: all equal, sum = sum over pairs of (path length-1
  // weighted by split). Just assert all equal and positive.
  const auto g = graph::cycle_graph<std::uint32_t>(6);
  const auto bc = betweenness_centrality(g);
  for (VertexId v = 1; v < 6; ++v) EXPECT_NEAR(bc[v], bc[0], 1e-12);
  EXPECT_GT(bc[0], 0.0);
}

TEST(Betweenness, CompleteGraphAllZero) {
  const auto g = graph::complete_graph<std::uint32_t>(6);
  for (const auto x : betweenness_centrality(g)) EXPECT_DOUBLE_EQ(x, 0.0);
}

TEST(Betweenness, NormalizedRange) {
  const auto g = graph::barabasi_albert<std::uint32_t>(100, 3, 5);
  const auto bc = betweenness_centrality(g, /*normalize=*/true);
  for (const auto x : bc) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Betweenness, MatchesBruteForceUnweighted) {
  const auto g = graph::erdos_renyi_gnm<std::uint32_t>(40, 120, 6);
  const auto fast = betweenness_centrality(g);
  const auto brute = brute_force_betweenness(g);
  for (VertexId v = 0; v < 40; ++v) {
    EXPECT_NEAR(fast[v], brute[v], 1e-9) << "v=" << v;
  }
}

TEST(Betweenness, MatchesBruteForceWeighted) {
  auto g = graph::erdos_renyi_gnm<std::uint32_t>(35, 100, 7);
  g = graph::randomize_weights<std::uint32_t>(g, 1, 7, 8);
  const auto fast = betweenness_centrality(g);
  const auto brute = brute_force_betweenness(g);
  for (VertexId v = 0; v < 35; ++v) {
    EXPECT_NEAR(fast[v], brute[v], 1e-9) << "v=" << v;
  }
}

TEST(Betweenness, MatchesBruteForceDirected) {
  const auto g = graph::erdos_renyi_gnm<std::uint32_t>(30, 140, 9,
                                                       graph::Directedness::kDirected);
  const auto fast = betweenness_centrality(g);
  const auto brute = brute_force_betweenness(g);
  for (VertexId v = 0; v < 30; ++v) {
    EXPECT_NEAR(fast[v], brute[v], 1e-9) << "v=" << v;
  }
}

TEST(Betweenness, DisconnectedComponentsIndependent) {
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kUndirected, 7);
  b.add_edge(0, 1);
  b.add_edge(1, 2);  // P3: vertex 1 has bc 1
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(5, 6);  // P4: vertices 4,5 have bc 2
  const auto bc = betweenness_centrality(b.build());
  EXPECT_DOUBLE_EQ(bc[1], 1.0);
  EXPECT_DOUBLE_EQ(bc[4], 2.0);
  EXPECT_DOUBLE_EQ(bc[5], 2.0);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
}

class BetweennessThreads : public ::testing::TestWithParam<int> {};

TEST_P(BetweennessThreads, ThreadCountInvariant) {
  const auto g = graph::barabasi_albert<std::uint32_t>(120, 3, 10);
  std::vector<double> base;
  {
    util::ThreadScope scope(1);
    base = betweenness_centrality(g);
  }
  util::ThreadScope scope(GetParam());
  const auto bc = betweenness_centrality(g);
  for (VertexId v = 0; v < 120; ++v) {
    EXPECT_NEAR(bc[v], base[v], 1e-9) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, BetweennessThreads, ::testing::Values(2, 3, 4, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "t" + std::to_string(info.param);
                         });

TEST(Betweenness, HubsDominateOnScaleFree) {
  // The paper's Section 2.2 premise, quantified: the top-degree decile of a
  // BA graph carries the bulk of the betweenness mass.
  const auto g = graph::barabasi_albert<std::uint32_t>(400, 3, 11);
  const auto bc = betweenness_centrality(g);
  const auto degrees = g.degrees();
  std::vector<VertexId> by_degree(400);
  std::iota(by_degree.begin(), by_degree.end(), VertexId{0});
  std::sort(by_degree.begin(), by_degree.end(),
            [&](VertexId a, VertexId b) { return degrees[a] > degrees[b]; });
  double top = 0.0, total = 0.0;
  for (std::size_t i = 0; i < 400; ++i) {
    total += bc[by_degree[i]];
    if (i < 40) top += bc[by_degree[i]];
  }
  EXPECT_GT(top / total, 0.5) << "top-10% degree vertices should carry most centrality";
}

}  // namespace
