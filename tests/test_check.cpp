// Tests for the correctness-verification subsystem (src/check/): the
// differential oracle, the invariant catalog, the backend registry, the
// seeded fuzz driver — and the fixes the subsystem guards: the
// delta-stepping deferred-set dedup, execution-control wiring in the
// secondary solvers, and the dynamic-update refinement law.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "test_helpers.hpp"

namespace {

using namespace parapsp;

// ---------- oracle: diff_matrices / perturb / mutation self-test ----------

template <WeightType W>
void run_mutation_self_test(const char* weight_name) {
  check::FuzzGraphSpec spec{check::FuzzFamily::kBA, 64, 3, false, false, 7};
  const auto g = check::build_fuzz_graph<W>(spec);
  const auto st = check::mutation_self_test(g, check::reference_backend<W>(), 7);
  EXPECT_TRUE(st.is_ok()) << weight_name << ": " << st.to_string();
}

TEST(OracleSelfTest, CatchesPlantedMutationU32) { run_mutation_self_test<std::uint32_t>("u32"); }
TEST(OracleSelfTest, CatchesPlantedMutationI32) { run_mutation_self_test<std::int32_t>("i32"); }
TEST(OracleSelfTest, CatchesPlantedMutationF32) { run_mutation_self_test<float>("f32"); }
TEST(OracleSelfTest, CatchesPlantedMutationF64) { run_mutation_self_test<double>("f64"); }

TEST(Oracle, IdenticalMatricesAgree) {
  const auto g = graph::barabasi_albert<std::uint32_t>(50, 3, 11);
  const auto D = apsp::repeated_dijkstra(g);
  const auto diff = check::diff_matrices(D, D);
  ASSERT_TRUE(diff) << diff.status().to_string();
  EXPECT_FALSE(diff->has_value());
}

TEST(Oracle, DivergenceCarriesProvenance) {
  const auto g = graph::barabasi_albert<std::uint32_t>(50, 3, 12);
  const auto D = apsp::repeated_dijkstra(g);
  auto mutated = D;
  const auto [u, v] = check::perturb_one_entry(mutated, 99);

  check::Provenance prov;
  prov.backend_a = "ref";
  prov.backend_b = "mutant";
  prov.graph_fp = apsp::graph_fingerprint(g);
  prov.seed = 99;
  prov.graph_desc = "--family ba --n 50 --seed 12";
  const auto diff = check::diff_matrices(D, mutated, prov);
  ASSERT_TRUE(diff) << diff.status().to_string();
  ASSERT_TRUE(diff->has_value());
  EXPECT_EQ((*diff)->source, u);
  EXPECT_EQ((*diff)->target, v);
  EXPECT_EQ((*diff)->value_a, D.at(u, v));
  EXPECT_EQ((*diff)->value_b, mutated.at(u, v));
  const auto text = (*diff)->to_string();
  EXPECT_NE(text.find("ref"), std::string::npos);
  EXPECT_NE(text.find("mutant"), std::string::npos);
  EXPECT_NE(text.find("seed=99"), std::string::npos);
  EXPECT_NE(text.find("--family ba"), std::string::npos);
}

TEST(Oracle, SizeMismatchIsTypedError) {
  const apsp::DistanceMatrix<std::uint32_t> a(4), b(5);
  const auto diff = check::diff_matrices(a, b);
  ASSERT_FALSE(diff);
  EXPECT_EQ(diff.status().code(), util::ErrorCode::kInvalidArgument);
}

TEST(Oracle, PerturbNeverTouchesDiagonalAndAlwaysChanges) {
  const auto g = graph::erdos_renyi_gnm<std::uint32_t>(30, 40, 13);  // disconnected
  const auto D = apsp::repeated_dijkstra(g);
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    auto mutated = D;
    const auto [u, v] = check::perturb_one_entry(mutated, seed);
    EXPECT_NE(u, v);
    EXPECT_NE(mutated.at(u, v), D.at(u, v)) << "seed " << seed;
    EXPECT_FALSE(is_infinite(mutated.at(u, v))) << "seed " << seed;
  }
}

// ---------- backend registry ----------

TEST(Backends, CatalogCoversEverySolverLayer) {
  // 10 apsp algorithms + 7 orderings + 8 sssp substrates + 3 substrate
  // sweeps + 3 dynamic-engine epoch replays (dial is integral-only, so the
  // float catalogs have one fewer).
  EXPECT_EQ(check::all_backends<std::uint32_t>().size(), 31u);
  EXPECT_EQ(check::all_backends<std::int32_t>().size(), 31u);
  EXPECT_EQ(check::all_backends<float>().size(), 30u);
  EXPECT_EQ(check::all_backends<double>().size(), 30u);
}

TEST(Backends, FindByName) {
  EXPECT_TRUE(check::find_backend<std::uint32_t>("sssp:dial").has_value());
  EXPECT_TRUE(check::find_backend<std::uint32_t>("order:parbuckets").has_value());
  EXPECT_FALSE(check::find_backend<std::uint32_t>("sssp:nonexistent").has_value());
  EXPECT_FALSE(check::find_backend<float>("sssp:dial").has_value());
}

TEST(Backends, PreconditionGates) {
  const auto unit = graph::path_graph<std::uint32_t>(6);
  auto weighted = graph::randomize_weights<std::uint32_t>(unit, 2, 9000, 14);

  const auto bfs = check::find_backend<std::uint32_t>("sssp:bfs-hops");
  ASSERT_TRUE(bfs.has_value());
  EXPECT_TRUE(bfs->is_applicable(unit));
  EXPECT_FALSE(bfs->is_applicable(weighted));

  const auto dial = check::find_backend<std::uint32_t>("sssp:dial");
  ASSERT_TRUE(dial.has_value());
  EXPECT_TRUE(dial->is_applicable(unit));
  EXPECT_FALSE(dial->is_applicable(weighted));  // max weight > 4096
}

TEST(Backends, WholeCatalogAgreesOnOneGraph) {
  check::FuzzGraphSpec spec{check::FuzzFamily::kBA, 40, 3, false, false, 15};
  const auto g = check::build_fuzz_graph<std::uint32_t>(spec);
  const auto reference = check::reference_backend<std::uint32_t>();
  for (const auto& backend : check::all_backends<std::uint32_t>()) {
    if (!backend.is_applicable(g)) continue;
    const auto diff = check::diff_backends(g, reference, backend, spec.seed,
                                           spec.replay_flags("u32"));
    ASSERT_TRUE(diff) << backend.name << ": " << diff.status().to_string();
    EXPECT_FALSE(diff->has_value()) << (**diff).to_string();
  }
}

// ---------- invariant catalog ----------

TEST(Invariants, CleanMatrixPasses) {
  check::FuzzGraphSpec spec{check::FuzzFamily::kBA, 60, 3, false, false, 16};
  const auto g = check::build_fuzz_graph<std::uint32_t>(spec);
  const auto D = apsp::repeated_dijkstra(g);
  const auto report = check::check_invariants(g, D);
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Invariants, DetectsSizeMismatch) {
  const auto g = graph::path_graph<std::uint32_t>(5);
  const apsp::DistanceMatrix<std::uint32_t> D(4);
  EXPECT_FALSE(check::check_invariants(g, D).ok());
}

TEST(Invariants, DetectsNonzeroDiagonal) {
  const auto g = graph::path_graph<std::uint32_t>(5);
  auto D = apsp::floyd_warshall(g);
  D.at(2, 2) = 1;
  check::InvariantReport report;
  check::check_zero_diagonal(D, report);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.problems[0].find("vertex 2"), std::string::npos);
}

TEST(Invariants, DetectsAsymmetryOnUndirected) {
  const auto g = graph::path_graph<std::uint32_t>(5);
  auto D = apsp::floyd_warshall(g);
  D.at(1, 3) += 1;
  check::InvariantReport report;
  check::check_symmetry(g, D, report);
  EXPECT_FALSE(report.ok());
}

TEST(Invariants, SymmetryIsNoOpOnDirected) {
  const auto g = graph::rmat<std::uint32_t>(4, 40, 17, graph::Directedness::kDirected);
  auto D = apsp::floyd_warshall(g);
  check::InvariantReport report;
  check::check_symmetry(g, D, report);
  EXPECT_TRUE(report.ok());
}

TEST(Invariants, DetectsTriangleViolation) {
  const auto g = graph::path_graph<std::uint32_t>(3);  // 0-1-2, D(0,2)=2
  auto D = apsp::floyd_warshall(g);
  D.at(0, 2) = 10;  // now D(0,2) > D(0,1) + D(1,2)
  check::InvariantReport report;
  check::check_triangle_sampled(D, report, /*samples=*/2048, /*seed=*/1);
  EXPECT_FALSE(report.ok());
}

TEST(Invariants, LandmarkSandwichHoldsAndDetectsCorruption) {
  const auto g = graph::barabasi_albert<std::uint32_t>(60, 3, 18);
  auto D = apsp::floyd_warshall(g);
  const apsp::LandmarkIndex<std::uint32_t> index(g, 4, apsp::LandmarkPolicy::kTopDegree);

  check::InvariantReport clean;
  check::check_landmark_sandwich(index, D, clean, /*samples=*/2048, /*seed=*/2);
  EXPECT_TRUE(clean.ok()) << clean.to_string();

  // Lengthen a full row beyond any landmark upper bound: sampling must hit it.
  for (VertexId v = 1; v < g.num_vertices(); ++v) D.at(1, v) = 1u << 20;
  check::InvariantReport corrupt;
  check::check_landmark_sandwich(index, D, corrupt, /*samples=*/4096, /*seed=*/2);
  EXPECT_FALSE(corrupt.ok());
}

TEST(Invariants, MonotoneRefinementDetectsLengthening) {
  const auto g = graph::barabasi_albert<std::uint32_t>(40, 3, 19);
  const auto before = apsp::floyd_warshall(g);
  auto after = before;
  check::InvariantReport ok_report;
  check::check_monotone_refinement(before, after, ok_report);
  EXPECT_TRUE(ok_report.ok());

  after.at(3, 4) += 5;
  check::InvariantReport bad_report;
  check::check_monotone_refinement(before, after, bad_report);
  ASSERT_FALSE(bad_report.ok());
  EXPECT_NE(bad_report.problems[0].find("(3,4)"), std::string::npos);
}

// ---------- differential coverage: sssp substrates vs dijkstra ----------

template <WeightType W>
void run_sssp_differential(const char* weight_name) {
  using check::FuzzFamily;
  const std::vector<check::FuzzGraphSpec> specs = {
      {FuzzFamily::kER, 72, 216, /*directed=*/false, /*unit=*/false, 101},
      {FuzzFamily::kER, 72, 260, /*directed=*/true, /*unit=*/false, 102},
      {FuzzFamily::kBA, 72, 3, /*directed=*/false, /*unit=*/false, 103},
      {FuzzFamily::kBA, 72, 3, /*directed=*/true, /*unit=*/false, 104},
      {FuzzFamily::kRMAT, 64, 256, /*directed=*/true, /*unit=*/false, 105},
      {FuzzFamily::kRMAT, 64, 200, /*directed=*/false, /*unit=*/false, 106},
  };
  const auto dijkstra = check::find_backend<W>("sssp:dijkstra");
  ASSERT_TRUE(dijkstra.has_value());
  for (const auto& spec : specs) {
    const auto g = check::build_fuzz_graph<W>(spec);
    for (const char* name :
         {"sssp:bellman-ford", "sssp:spfa", "sssp:delta-stepping", "sssp:dial"}) {
      const auto backend = check::find_backend<W>(name);
      if (!backend.has_value()) continue;  // dial on float weights
      if (!backend->is_applicable(g)) continue;
      const auto diff = check::diff_backends(g, *dijkstra, *backend, spec.seed,
                                             spec.replay_flags(weight_name));
      ASSERT_TRUE(diff) << name << ": " << diff.status().to_string();
      EXPECT_FALSE(diff->has_value()) << (**diff).to_string();
    }
  }
}

TEST(SsspDifferential, AllSubstratesAgreeU32) { run_sssp_differential<std::uint32_t>("u32"); }
TEST(SsspDifferential, AllSubstratesAgreeI32) { run_sssp_differential<std::int32_t>("i32"); }
TEST(SsspDifferential, AllSubstratesAgreeF32) { run_sssp_differential<float>("f32"); }
TEST(SsspDifferential, AllSubstratesAgreeF64) { run_sssp_differential<double>("f64"); }

// ---------- differential coverage: dynamic update vs recompute ----------

template <WeightType W>
void run_insertion_differential(const char* weight_name) {
  check::FuzzGraphSpec spec{check::FuzzFamily::kBA, 64, 3, false, false, 23};
  const auto g = check::build_fuzz_graph<W>(spec);
  const VertexId n = g.num_vertices();
  const auto before = apsp::repeated_dijkstra(g);

  const apsp::EdgeInsertion<W> e{0, n / 2, W{1}, /*undirected=*/true};
  auto updated = before;
  const auto improved = apsp::apply_insertion(updated, e);
  ASSERT_TRUE(improved) << improved.status().message();
  EXPECT_GT(*improved, 0u) << weight_name;

  // The refinement law: an insertion never lengthens any entry.
  check::InvariantReport mono;
  check::check_monotone_refinement(before, updated, mono);
  EXPECT_TRUE(mono.ok()) << mono.to_string();

  // Differential: the updated matrix must equal a from-scratch recompute on
  // the graph with the edge actually added.
  graph::GraphBuilder<W> b(graph::Directedness::kDirected, n);
  for (VertexId u = 0; u < n; ++u) {
    const auto nb = g.neighbors(u);
    const auto ws = g.weights(u);
    for (std::size_t i = 0; i < nb.size(); ++i) b.add_edge(u, nb[i], ws[i]);
  }
  b.add_edge(e.u, e.v, e.w);
  b.add_edge(e.v, e.u, e.w);
  const auto recomputed = apsp::repeated_dijkstra(b.build());

  check::Provenance prov;
  prov.backend_a = "dynamic:apply-insertion";
  prov.backend_b = "apsp:repeated-dijkstra-ref";
  prov.seed = spec.seed;
  prov.graph_desc = spec.replay_flags(weight_name);
  const auto diff = check::diff_matrices(updated, recomputed, prov);
  ASSERT_TRUE(diff) << diff.status().to_string();
  EXPECT_FALSE(diff->has_value()) << (**diff).to_string();
}

TEST(DynamicDifferential, InsertionMatchesRecomputeU32) {
  run_insertion_differential<std::uint32_t>("u32");
}
TEST(DynamicDifferential, InsertionMatchesRecomputeI32) {
  run_insertion_differential<std::int32_t>("i32");
}
TEST(DynamicDifferential, InsertionMatchesRecomputeF32) {
  run_insertion_differential<float>("f32");
}
TEST(DynamicDifferential, InsertionMatchesRecomputeF64) {
  run_insertion_differential<double>("f64");
}

// The epoch engine through the oracle: each dynamic backend replays update
// epochs (insertion-only / deletion-only / mixed) and must land bit-identical
// on the reference matrix — on a directed and an undirected fuzz graph.
template <WeightType W>
void run_dynamic_epoch_differential(const char* weight_name) {
  const check::FuzzGraphSpec specs[] = {
      {check::FuzzFamily::kBA, 56, 3, false, false, 31},
      {check::FuzzFamily::kRMAT, 56, 224, true, false, 32},
  };
  for (const auto& spec : specs) {
    const auto g = check::build_fuzz_graph<W>(spec);
    const auto ref = apsp::repeated_dijkstra(g);
    for (auto& backend : check::dynamic_backends<W>()) {
      const auto got = backend.run(g);
      check::Provenance prov;
      prov.backend_a = backend.name;
      prov.backend_b = "apsp:repeated-dijkstra-ref";
      prov.seed = spec.seed;
      prov.graph_desc = spec.replay_flags(weight_name);
      const auto diff = check::diff_matrices(got, ref, prov);
      ASSERT_TRUE(diff) << diff.status().to_string();
      EXPECT_FALSE(diff->has_value()) << (**diff).to_string();
    }
  }
}

TEST(DynamicDifferential, EpochReplaysMatchRecomputeU32) {
  run_dynamic_epoch_differential<std::uint32_t>("u32");
}
TEST(DynamicDifferential, EpochReplaysMatchRecomputeI32) {
  run_dynamic_epoch_differential<std::int32_t>("i32");
}
TEST(DynamicDifferential, EpochReplaysMatchRecomputeF32) {
  run_dynamic_epoch_differential<float>("f32");
}
TEST(DynamicDifferential, EpochReplaysMatchRecomputeF64) {
  run_dynamic_epoch_differential<double>("f64");
}

// ---------- fuzz driver ----------

TEST(FuzzDriver, GraphBuildIsDeterministic) {
  check::FuzzGraphSpec spec{check::FuzzFamily::kRMAT, 48, 192, true, false, 27};
  const auto g1 = check::build_fuzz_graph<std::uint32_t>(spec);
  const auto g2 = check::build_fuzz_graph<std::uint32_t>(spec);
  EXPECT_EQ(apsp::graph_fingerprint(g1), apsp::graph_fingerprint(g2));
}

TEST(FuzzDriver, SameSeedSameGraphAcrossWeightTypes) {
  // The four weight types must see the *same* integer-valued weights so
  // backends stay bit-comparable (header contract of check/fuzz.hpp).
  check::FuzzGraphSpec spec{check::FuzzFamily::kBA, 48, 3, false, false, 28};
  const auto gu = check::build_fuzz_graph<std::uint32_t>(spec);
  const auto gf = check::build_fuzz_graph<double>(spec);
  ASSERT_EQ(gu.num_stored_edges(), gf.num_stored_edges());
  for (std::size_t i = 0; i < gu.edge_weights().size(); ++i) {
    EXPECT_EQ(static_cast<double>(gu.edge_weights()[i]), gf.edge_weights()[i]);
  }
}

TEST(FuzzDriver, ReplayFlagsRoundTrip) {
  check::FuzzGraphSpec spec{check::FuzzFamily::kER, 96, 288, true, true, 42};
  EXPECT_EQ(spec.replay_flags("f32"),
            "--family er --weight f32 --n 96 --param 288 --seed 42 "
            "--directed --unit-weights");
}

TEST(FuzzDriver, SmallSweepRunsClean) {
  check::FuzzConfig cfg;
  cfg.n = 32;
  cfg.rounds = 1;
  cfg.triangle_samples = 128;
  const auto outcome = check::run_fuzz(cfg);
  EXPECT_GT(outcome.graphs, 0u);
  EXPECT_GT(outcome.comparisons, 0u);
  EXPECT_TRUE(outcome.ok()) << (outcome.failures.empty() ? "" : outcome.failures[0]);
}

// ---------- delta-stepping: deferred-set dedup fix ----------

TEST(DeltaSteppingDedup, SameDistancesStrictlyFewerHeavyRelaxations) {
  // Weighted scale-free graph: light-phase improvements re-settle hub
  // vertices within a bucket, so the historical behavior (one heavy pass per
  // re-settlement) does strictly more heavy-edge work.
  const auto g = graph::randomize_weights<std::uint32_t>(
      graph::barabasi_albert<std::uint32_t>(400, 4, 29), 1, 20, 30);

  sssp::DeltaSteppingStats with_dedup, without_dedup;
  const auto d1 = sssp::detail::delta_stepping_impl<std::uint32_t>(
      g, 0, 0, /*dedup_deferred=*/true, &with_dedup, nullptr);
  const auto d2 = sssp::detail::delta_stepping_impl<std::uint32_t>(
      g, 0, 0, /*dedup_deferred=*/false, &without_dedup, nullptr);

  EXPECT_EQ(d1, d2);  // bit-identical distances either way
  EXPECT_EQ(d1, sssp::dijkstra(g, 0));
  EXPECT_LT(with_dedup.heavy_relaxations, without_dedup.heavy_relaxations);
  EXPECT_EQ(with_dedup.light_relaxations, without_dedup.light_relaxations);
}

TEST(DeltaSteppingDedup, StatsAreConsistent) {
  const auto g = graph::randomize_weights<std::uint32_t>(
      graph::barabasi_albert<std::uint32_t>(200, 3, 31), 1, 20, 32);
  sssp::DeltaSteppingStats stats;
  const auto dist = sssp::delta_stepping(g, 0, 0u, &stats);
  EXPECT_EQ(dist, sssp::dijkstra(g, 0));
  EXPECT_GT(stats.settlements, 0u);
  EXPECT_GT(stats.buckets_processed, 0u);
  EXPECT_GT(stats.light_relaxations + stats.heavy_relaxations, 0u);
}

TEST(DeltaSteppingObs, HeavyCounterFlushesIntoRegistry) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "observability compiled out";
  const auto g = graph::randomize_weights<std::uint32_t>(
      graph::barabasi_albert<std::uint32_t>(150, 3, 33), 1, 20, 34);
  sssp::DeltaSteppingStats stats;
  obs::Collection collection(true);
  const auto dist = sssp::delta_stepping(g, 0, 0u, &stats);
  (void)dist;
  const auto totals = obs::Registry::global().totals();
  EXPECT_EQ(totals[static_cast<std::size_t>(obs::Counter::kHeavyEdgeRelaxations)],
            stats.heavy_relaxations);
  EXPECT_EQ(totals[static_cast<std::size_t>(obs::Counter::kEdgeRelaxations)],
            stats.light_relaxations + stats.heavy_relaxations);
}

// ---------- execution-control wiring in the secondary solvers ----------

TEST(ExecControlWiring, BoundedApspHonorsCancel) {
  const auto g = graph::barabasi_albert<std::uint32_t>(80, 3, 35);
  util::ExecutionControl control;
  control.request_cancel();
  const auto D = apsp::bounded_apsp<std::uint32_t>(g, 10, &control);
  EXPECT_EQ(control.check().code(), util::ErrorCode::kCancelled);
  EXPECT_EQ(control.progress(), 0u);
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      EXPECT_TRUE(is_infinite(D.at(u, v))) << u << "," << v;
    }
  }
}

TEST(ExecControlWiring, BoundedApspUnfiredControlIsTransparent) {
  const auto g = graph::barabasi_albert<std::uint32_t>(80, 3, 36);
  util::ExecutionControl control;
  const auto with = apsp::bounded_apsp<std::uint32_t>(g, 6, &control);
  const auto without = apsp::bounded_apsp<std::uint32_t>(g, 6);
  parapsp::testing::expect_same_distances(with, without, "bounded_apsp + control");
  EXPECT_EQ(control.progress(), g.num_vertices());
  EXPECT_TRUE(control.check().is_ok());
}

TEST(ExecControlWiring, BetweennessHonorsCancel) {
  const auto g = graph::barabasi_albert<std::uint32_t>(80, 3, 37);
  util::ExecutionControl control;
  control.request_cancel();
  const auto scores = analysis::betweenness_centrality(g, false, &control);
  EXPECT_EQ(control.progress(), 0u);
  for (const double s : scores) EXPECT_EQ(s, 0.0);
}

TEST(ExecControlWiring, BetweennessUnfiredControlIsTransparent) {
  const auto g = graph::barabasi_albert<std::uint32_t>(60, 3, 38);
  util::ExecutionControl control;
  const auto with = analysis::betweenness_centrality(g, true, &control);
  const auto without = analysis::betweenness_centrality(g, true);
  ASSERT_EQ(with.size(), without.size());
  for (std::size_t v = 0; v < with.size(); ++v) EXPECT_DOUBLE_EQ(with[v], without[v]);
  EXPECT_EQ(control.progress(), g.num_vertices());
}

TEST(ExecControlWiring, DeltaSteppingHonorsDeadline) {
  const auto g = graph::randomize_weights<std::uint32_t>(
      graph::barabasi_albert<std::uint32_t>(100, 3, 39), 1, 20, 40);
  util::ExecutionControl control;
  control.set_deadline_after(-1.0);  // expired before the first bucket
  const auto dist = sssp::delta_stepping(g, 0, 0u, nullptr, &control);
  EXPECT_EQ(control.check().code(), util::ErrorCode::kTimeout);
  EXPECT_EQ(dist[0], 0u);
  for (VertexId v = 1; v < g.num_vertices(); ++v) {
    EXPECT_TRUE(is_infinite(dist[v])) << v;
  }
}

TEST(ExecControlWiring, DeltaSteppingUnfiredControlIsTransparent) {
  const auto g = graph::randomize_weights<std::uint32_t>(
      graph::barabasi_albert<std::uint32_t>(100, 3, 41), 1, 20, 42);
  util::ExecutionControl control;
  const auto with = sssp::delta_stepping(g, 0, 0u, nullptr, &control);
  const auto without = sssp::delta_stepping(g, 0);
  EXPECT_EQ(with, without);
  EXPECT_GT(control.progress(), 0u);
}

}  // namespace
