// Tests for the stepping-substrate layer: the lazy-batched bucket queue,
// rho-/Delta*-stepping exactness (differential vs Dijkstra through the
// src/check/ oracle), the structural-signal substrate picker, and the
// delta-stepping workspace-reuse refactor (proven no-regression via
// relaxation counters).
#include <gtest/gtest.h>
#include <omp.h>

#include <algorithm>
#include <set>
#include <vector>

#include "apsp/parallel.hpp"
#include "apsp/peng_adaptive.hpp"
#include "check/fuzz.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "graph/ops.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/lazy_bucket_queue.hpp"
#include "sssp/rho_stepping.hpp"
#include "sssp/substrate.hpp"

namespace {

using namespace parapsp;

// ---------- LazyBucketQueue ----------

TEST(LazyBucketQueue, BatchedPullReturnsClosestAcrossBuckets) {
  sssp::LazyBucketQueue<std::uint32_t> q;
  q.reset(/*n=*/10, /*delta=*/1, /*num_threads=*/1);
  std::vector<std::uint32_t> dist(10, infinity<std::uint32_t>());
  const std::pair<VertexId, std::uint32_t> entries[] = {
      {0, 5}, {1, 1}, {2, 3}, {3, 2}, {4, 9}};
  for (const auto& [v, d] : entries) {
    dist[v] = d;
    q.push(v, d);
  }
  q.flush_buffers();

  std::vector<VertexId> batch;
  ASSERT_EQ(q.pull_batch(3, dist.data(), batch), 3u);
  EXPECT_EQ(std::set<VertexId>(batch.begin(), batch.end()),
            (std::set<VertexId>{1, 3, 2}));  // d = 1, 2, 3

  ASSERT_EQ(q.pull_batch(3, dist.data(), batch), 2u);
  EXPECT_EQ(std::set<VertexId>(batch.begin(), batch.end()),
            (std::set<VertexId>{0, 4}));  // d = 5, 9
  EXPECT_EQ(q.pull_batch(3, dist.data(), batch), 0u);
}

TEST(LazyBucketQueue, StraddlingBucketSplitsAtRho) {
  // All entries land in one bucket; the nth_element split must still hand
  // out exactly the rho smallest.
  sssp::LazyBucketQueue<std::uint32_t> q;
  q.reset(10, /*delta=*/100, 1);
  std::vector<std::uint32_t> dist(10, infinity<std::uint32_t>());
  const std::pair<VertexId, std::uint32_t> entries[] = {
      {0, 5}, {1, 1}, {2, 9}, {3, 3}, {4, 7}};
  for (const auto& [v, d] : entries) {
    dist[v] = d;
    q.push(v, d);
  }
  q.flush_buffers();

  std::vector<VertexId> batch;
  ASSERT_EQ(q.pull_batch(2, dist.data(), batch), 2u);
  EXPECT_EQ(std::set<VertexId>(batch.begin(), batch.end()),
            (std::set<VertexId>{1, 3}));  // d = 1, 3
  ASSERT_EQ(q.pull_batch(10, dist.data(), batch), 3u);
  EXPECT_EQ(std::set<VertexId>(batch.begin(), batch.end()),
            (std::set<VertexId>{0, 4, 2}));  // d = 5, 7, 9
}

TEST(LazyBucketQueue, LazyDeletionDropsStaleEntries) {
  // A decreased key leaves its old entry behind; revalidation against the
  // caller's dist[] must drop it (and count it).
  sssp::LazyBucketQueue<std::uint32_t> q;
  q.reset(4, /*delta=*/1, 1);
  std::vector<std::uint32_t> dist(4, infinity<std::uint32_t>());
  q.push(2, 7);  // stale: dist[2] improves to 3 below
  q.push(2, 3);
  dist[2] = 3;
  q.flush_buffers();

  std::vector<VertexId> batch;
  ASSERT_EQ(q.pull_batch(0, dist.data(), batch), 1u);
  EXPECT_EQ(batch[0], 2u);
  EXPECT_EQ(q.pull_batch(0, dist.data(), batch), 0u);
  EXPECT_EQ(q.stats().stale_skipped, 1u);
}

TEST(LazyBucketQueue, DuplicateEntriesSettleOnce) {
  // Racing threads can insert the same (v, d) twice; the settled_at_ stamp
  // makes the second one a no-op.
  sssp::LazyBucketQueue<std::uint32_t> q;
  q.reset(4, /*delta=*/1, 2);
  std::vector<std::uint32_t> dist(4, infinity<std::uint32_t>());
  dist[1] = 5;
  q.push(0, 1, 5);
  q.push(1, 1, 5);
  q.flush_buffers();

  std::vector<VertexId> batch;
  EXPECT_EQ(q.pull_batch(8, dist.data(), batch), 1u);
  EXPECT_EQ(batch[0], 1u);
  EXPECT_EQ(q.stats().stale_skipped, 1u);
}

TEST(LazyBucketQueue, WholeBucketModePullsExactlyOneBucket) {
  sssp::LazyBucketQueue<std::uint32_t> q;
  q.reset(8, /*delta=*/10, 1);
  std::vector<std::uint32_t> dist(8, infinity<std::uint32_t>());
  const std::pair<VertexId, std::uint32_t> entries[] = {
      {0, 1}, {1, 4}, {2, 9}, {3, 12}, {4, 15}};
  for (const auto& [v, d] : entries) {
    dist[v] = d;
    q.push(v, d);
  }
  q.flush_buffers();

  std::vector<VertexId> batch;
  ASSERT_EQ(q.pull_batch(0, dist.data(), batch), 3u);  // bucket [0, 10)
  EXPECT_EQ(std::set<VertexId>(batch.begin(), batch.end()),
            (std::set<VertexId>{0, 1, 2}));
  ASSERT_EQ(q.pull_batch(0, dist.data(), batch), 2u);  // bucket [10, 20)
  EXPECT_EQ(std::set<VertexId>(batch.begin(), batch.end()),
            (std::set<VertexId>{3, 4}));
}

TEST(LazyBucketQueue, DecreasedKeyReopensEarlierBucket) {
  sssp::LazyBucketQueue<std::uint32_t> q;
  q.reset(8, /*delta=*/10, 1);
  std::vector<std::uint32_t> dist(8, infinity<std::uint32_t>());
  dist[0] = 25;
  q.push(0, 25);
  q.flush_buffers();
  std::vector<VertexId> batch;
  ASSERT_EQ(q.pull_batch(0, dist.data(), batch), 1u);  // cursor is now past bucket 0

  dist[1] = 3;  // a later improvement lands in bucket 0
  q.push(1, 3);
  q.flush_buffers();
  ASSERT_EQ(q.pull_batch(0, dist.data(), batch), 1u);
  EXPECT_EQ(batch[0], 1u);
}

TEST(LazyBucketQueue, ConcurrentPushesFromOwnedBuffers) {
  // Per-thread buffers are lock-free by thread ownership: concurrent pushes
  // with distinct tids must all surface after one flush. (This suite runs
  // under TSan in CI; a racy buffer would trip it.)
  constexpr int kThreads = 4;
  constexpr VertexId kN = 400;
  sssp::LazyBucketQueue<std::uint32_t> q;
  q.reset(kN, /*delta=*/5, kThreads);
  std::vector<std::uint32_t> dist(kN);

#pragma omp parallel num_threads(kThreads)
  {
    const int tid = omp_get_thread_num();
#pragma omp for schedule(static)
    for (std::int64_t v = 0; v < static_cast<std::int64_t>(kN); ++v) {
      const auto d = static_cast<std::uint32_t>((v * 7) % 97);
      dist[static_cast<std::size_t>(v)] = d;
      q.push(tid, static_cast<VertexId>(v), d);
    }
  }
  q.flush_buffers();
  EXPECT_EQ(q.stats().pushes, kN);

  std::set<VertexId> seen;
  std::vector<VertexId> batch;
  while (q.pull_batch(64, dist.data(), batch) > 0) {
    seen.insert(batch.begin(), batch.end());
  }
  EXPECT_EQ(seen.size(), kN);
}

// ---------- stepping exactness: differential vs Dijkstra via the oracle ----

template <WeightType W>
void expect_stepping_matches_reference(const char* weight_name) {
  const auto reference = check::reference_backend<W>();
  const char* names[] = {"sssp:rho-stepping", "sssp:delta-star-stepping"};
  auto specs = check::fuzz_specs(48);
  for (std::size_t si = 0; si < specs.size(); ++si) {
    auto spec = specs[si];
    spec.seed = 7 + si * 37;
    const auto g = check::build_fuzz_graph<W>(spec);
    const auto D_ref = reference.run(g);
    for (const char* name : names) {
      const auto backend = check::find_backend<W>(name);
      ASSERT_TRUE(backend.has_value()) << name;
      check::Provenance prov;
      prov.backend_a = reference.name;
      prov.backend_b = backend->name;
      prov.graph_desc = spec.replay_flags(weight_name);
      const auto D = backend->run(g);
      const auto diff = check::diff_matrices(D_ref, D, prov);
      ASSERT_TRUE(diff.has_value()) << diff.status().message();
      EXPECT_FALSE(diff->has_value())
          << name << " diverged: " << (**diff).to_string();
    }
  }
}

TEST(SteppingDifferential, MatchesDijkstraU32) {
  expect_stepping_matches_reference<std::uint32_t>("u32");
}
TEST(SteppingDifferential, MatchesDijkstraI32) {
  expect_stepping_matches_reference<std::int32_t>("i32");
}
TEST(SteppingDifferential, MatchesDijkstraF32) {
  expect_stepping_matches_reference<float>("f32");
}
TEST(SteppingDifferential, MatchesDijkstraF64) {
  expect_stepping_matches_reference<double>("f64");
}

TEST(Stepping, WorkspaceReuseAcrossSourcesStaysExact) {
  const auto base = graph::barabasi_albert<std::uint32_t>(200, 3, 11);
  const auto g = graph::randomize_weights<std::uint32_t>(base, 1, 20, 12);
  sssp::SteppingWorkspace<std::uint32_t> ws;
  for (const VertexId s : {VertexId{0}, VertexId{57}, VertexId{199}}) {
    EXPECT_EQ(sssp::rho_stepping(g, s, 0, nullptr, nullptr, &ws), sssp::dijkstra(g, s));
    EXPECT_EQ(sssp::delta_star_stepping(g, s, 0u, nullptr, nullptr, &ws),
              sssp::dijkstra(g, s));
  }
}

TEST(Stepping, SmallRhoStillExact) {
  // rho = 1 degenerates to (lazy) Dijkstra order — the slowest but most
  // work-efficient corner of the knob.
  const auto base = graph::watts_strogatz<std::uint32_t>(120, 4, 0.1, 5);
  const auto g = graph::randomize_weights<std::uint32_t>(base, 1, 9, 6);
  EXPECT_EQ(sssp::rho_stepping(g, 0, /*rho=*/1), sssp::dijkstra(g, 0));
}

TEST(AdaptiveRho, DefaultsStayExactAcrossSources) {
  const auto base = graph::barabasi_albert<std::uint32_t>(250, 3, 21);
  const auto g = graph::randomize_weights<std::uint32_t>(base, 1, 20, 22);
  sssp::SteppingWorkspace<std::uint32_t> ws;
  for (const VertexId s : {VertexId{0}, VertexId{99}, VertexId{249}}) {
    sssp::SteppingStats st;
    EXPECT_EQ(sssp::rho_stepping_adaptive(g, s, {}, &st, nullptr, &ws),
              sssp::dijkstra(g, s))
        << "source " << s;
    EXPECT_GT(st.final_rho, 0u);
  }
}

TEST(AdaptiveRho, GrowThresholdDoublesRhoWithinBounds) {
  const auto base = graph::watts_strogatz<std::uint32_t>(400, 4, 0.05, 31);
  const auto g = graph::randomize_weights<std::uint32_t>(base, 1, 9, 32);
  // grow_below > 1 makes every window's stale fraction "low": the controller
  // must double rho each decision until the ceiling, and stay exact.
  sssp::AdaptiveRhoConfig cfg;
  cfg.initial = 4;
  cfg.min_rho = 4;
  cfg.max_rho = 64;
  cfg.window = 1;
  cfg.grow_below = 1.5;
  cfg.shrink_above = 2.0;  // unreachable: fractions are <= 1
  sssp::SteppingStats st;
  EXPECT_EQ(sssp::rho_stepping_adaptive(g, 0, cfg, &st), sssp::dijkstra(g, 0));
  EXPECT_GT(st.rho_adjustments, 0u);
  EXPECT_GT(st.final_rho, cfg.initial);
  EXPECT_LE(st.final_rho, cfg.max_rho);
}

TEST(AdaptiveRho, ShrinkThresholdHalvesRhoDownToTheFloor) {
  const auto base = graph::barabasi_albert<std::uint32_t>(300, 3, 41);
  const auto g = graph::randomize_weights<std::uint32_t>(base, 1, 20, 42);
  // shrink_above < 0 makes every window's stale fraction "high": rho halves
  // each decision until the floor — the Dijkstra-ward direction.
  sssp::AdaptiveRhoConfig cfg;
  cfg.initial = 256;
  cfg.min_rho = 8;
  cfg.max_rho = 256;
  cfg.window = 1;
  cfg.grow_below = -1.0;     // unreachable: fractions are >= 0
  cfg.shrink_above = -0.5;   // always exceeded
  sssp::SteppingStats st;
  EXPECT_EQ(sssp::rho_stepping_adaptive(g, 0, cfg, &st), sssp::dijkstra(g, 0));
  EXPECT_GT(st.rho_adjustments, 0u);
  EXPECT_LT(st.final_rho, cfg.initial);
  EXPECT_GE(st.final_rho, cfg.min_rho);
}

TEST(AdaptiveRho, FixedRhoReportsZeroAdjustments) {
  const auto g = graph::barabasi_albert<std::uint32_t>(150, 3, 51);
  sssp::SteppingStats st;
  (void)sssp::rho_stepping(g, 0, 64, &st);
  EXPECT_EQ(st.rho_adjustments, 0u);
  EXPECT_EQ(st.final_rho, 64u);
}

TEST(Stepping, CancelledControlStopsEarly) {
  const auto g = graph::barabasi_albert<std::uint32_t>(300, 3, 9);
  util::ExecutionControl ctl;
  ctl.request_cancel();
  const auto dist = sssp::rho_stepping(g, 0, 0, nullptr, &ctl);
  // Stopped before the first batch: only tentative values, but well-formed.
  EXPECT_EQ(dist.size(), g.num_vertices());
  EXPECT_EQ(dist[0], 0u);
}

// ---------- substrate registry + picker ----------

TEST(Substrate, NameRoundTrip) {
  for (const auto s : sssp::all_substrates()) {
    EXPECT_EQ(sssp::substrate_from_string(sssp::to_string(s)), s);
  }
  EXPECT_THROW((void)sssp::substrate_from_string("bogus-stepping"),
               std::invalid_argument);
}

TEST(Substrate, SignalsAreDeterministic) {
  const auto base = graph::barabasi_albert<std::uint32_t>(500, 4, 3);
  const auto g = graph::randomize_weights<std::uint32_t>(base, 1, 20, 4);
  const auto a = sssp::measure_signals(g);
  const auto b = sssp::measure_signals(g);
  EXPECT_EQ(a.n, b.n);
  EXPECT_EQ(a.m, b.m);
  EXPECT_EQ(a.max_degree, b.max_degree);
  EXPECT_EQ(a.diameter_estimate, b.diameter_estimate);
  EXPECT_EQ(a.unit_weights, b.unit_weights);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sssp::choose_substrate(a, 8, sssp::SweepContext::kFullSweep),
              sssp::choose_substrate(b, 8, sssp::SweepContext::kFullSweep));
  }
}

TEST(Substrate, PickerFollowsTheRegimes) {
  using sssp::Substrate;
  using sssp::SweepContext;

  // Scale-free low-diameter weighted: row reuse wins the sweep.
  const auto ba = graph::randomize_weights<std::uint32_t>(
      graph::barabasi_albert<std::uint32_t>(2000, 4, 3), 1, 20, 4);
  const auto ba_sig = sssp::measure_signals(ba);
  EXPECT_FALSE(ba_sig.high_diameter());
  EXPECT_EQ(sssp::choose_substrate(ba_sig, 8, SweepContext::kFullSweep),
            Substrate::kModifiedDijkstra);

  // High-diameter weighted (path): rho-stepping takes the sweep — given
  // threads to feed.
  const auto path = graph::randomize_weights<std::uint32_t>(
      graph::path_graph<std::uint32_t>(2000), 1, 20, 5);
  const auto path_sig = sssp::measure_signals(path);
  EXPECT_TRUE(path_sig.high_diameter());
  EXPECT_EQ(sssp::choose_substrate(path_sig, 8, SweepContext::kFullSweep),
            Substrate::kRhoStepping);
  EXPECT_EQ(sssp::choose_substrate(path_sig, 1, SweepContext::kFullSweep),
            Substrate::kModifiedDijkstra);

  // Single source: no rows to reuse — stepping when parallel, heap when not.
  EXPECT_EQ(sssp::choose_substrate(path_sig, 1, SweepContext::kSingleSource),
            Substrate::kDijkstra);
  EXPECT_EQ(sssp::choose_substrate(path_sig, 8, SweepContext::kSingleSource),
            Substrate::kRhoStepping);
  auto unit_sig = path_sig;
  unit_sig.unit_weights = true;
  EXPECT_EQ(sssp::choose_substrate(unit_sig, 8, SweepContext::kSingleSource),
            Substrate::kDeltaStarStepping);
}

// ---------- solver / runner integration ----------

TEST(SubstrateSolve, SweepMatchesReuseKernel) {
  const auto g = graph::randomize_weights<std::uint32_t>(
      graph::barabasi_albert<std::uint32_t>(150, 3, 21), 1, 20, 22);
  const auto expected = apsp::par_apsp(g).distances;
  for (const auto sub : {sssp::Substrate::kRhoStepping,
                         sssp::Substrate::kDeltaStarStepping,
                         sssp::Substrate::kDeltaStepping, sssp::Substrate::kDijkstra}) {
    core::SolverOptions opts;
    opts.algorithm = core::Algorithm::kParApsp;
    opts.substrate = sub;
    const auto result = core::solve(g, opts);
    EXPECT_TRUE(result.distances == expected) << sssp::to_string(sub);
    EXPECT_EQ(result.substrate, sub);
  }
}

TEST(SubstrateSolve, AutoResolvesAndIsRecorded) {
  const auto g = graph::randomize_weights<std::uint32_t>(
      graph::barabasi_albert<std::uint32_t>(120, 3, 31), 1, 20, 32);
  core::SolverOptions opts;
  opts.algorithm = core::Algorithm::kParApsp;  // substrate defaults to kAuto
  const auto result = core::solve(g, opts);
  EXPECT_NE(result.substrate, sssp::Substrate::kAuto);
  EXPECT_TRUE(result.distances == apsp::par_apsp(g).distances);
}

TEST(SubstrateSolve, AdaptiveWithForcedSubstrateStaysExact) {
  const auto g = graph::randomize_weights<std::uint32_t>(
      graph::barabasi_albert<std::uint32_t>(120, 3, 41), 1, 20, 42);
  apsp::AdaptiveOptions opts;
  opts.substrate = sssp::Substrate::kRhoStepping;
  const auto result = apsp::peng_adaptive(g, opts);
  EXPECT_TRUE(result.distances == apsp::par_apsp(g).distances);
  EXPECT_EQ(result.substrate, sssp::Substrate::kRhoStepping);
}

TEST(SubstrateRunner, UnknownNameIsTypedInvalidArgument) {
  const auto g = graph::barabasi_albert<std::uint32_t>(32, 2, 1);
  core::Runner runner(g);
  runner.sssp("not-a-substrate");
  const auto st = runner.validate();
  EXPECT_EQ(st.code(), util::ErrorCode::kInvalidArgument);
  EXPECT_NE(st.message().find("not-a-substrate"), std::string::npos);
  const auto result = runner.run();
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(result.status().code(), util::ErrorCode::kInvalidArgument);
}

TEST(SubstrateRunner, SubstrateOnNonSweepAlgorithmRejected) {
  const auto g = graph::barabasi_albert<std::uint32_t>(32, 2, 1);
  core::Runner runner(g);
  runner.algorithm(core::Algorithm::kFloydWarshall)
      .sssp(sssp::Substrate::kRhoStepping);
  EXPECT_EQ(runner.validate().code(), util::ErrorCode::kInvalidArgument);
}

TEST(SubstrateRunner, FluentSsspSetterRuns) {
  const auto g = graph::randomize_weights<std::uint32_t>(
      graph::barabasi_albert<std::uint32_t>(100, 3, 51), 1, 20, 52);
  const auto result =
      core::Runner(g).algorithm("parapsp").sssp("delta-star-stepping").run();
  ASSERT_TRUE(result.has_value()) << result.status().to_string();
  EXPECT_EQ(result->substrate, sssp::Substrate::kDeltaStarStepping);
  EXPECT_TRUE(result->distances == apsp::par_apsp(g).distances);
}

// ---------- delta-stepping workspace reuse (satellite no-regression) -------

TEST(DeltaWorkspace, ReuseChangesNeitherDistancesNorRelaxations) {
  const auto g = graph::randomize_weights<std::uint32_t>(
      graph::barabasi_albert<std::uint32_t>(150, 3, 61), 1, 20, 62);
  sssp::DeltaSteppingWorkspace ws;
  for (VertexId s = 0; s < 10; ++s) {
    sssp::DeltaSteppingStats fresh_stats, reused_stats;
    const auto fresh = sssp::delta_stepping(g, s, 0u, &fresh_stats);
    const auto reused = sssp::delta_stepping(g, s, 0u, &reused_stats, nullptr, &ws);
    EXPECT_EQ(fresh, reused) << "source " << s;
    // The reuse is pure plumbing: identical relaxation work, bucket for
    // bucket — this is the no-regression proof the refactor rests on.
    EXPECT_EQ(fresh_stats.light_relaxations, reused_stats.light_relaxations);
    EXPECT_EQ(fresh_stats.heavy_relaxations, reused_stats.heavy_relaxations);
    EXPECT_EQ(fresh_stats.settlements, reused_stats.settlements);
    EXPECT_EQ(fresh_stats.buckets_processed, reused_stats.buckets_processed);
  }
}

TEST(DeltaWorkspace, HeavyRelaxationCounterUnchangedThroughObsRegistry) {
  if (!obs::kCompiledIn) GTEST_SKIP() << "obs layer compiled out";
  const auto g = graph::randomize_weights<std::uint32_t>(
      graph::watts_strogatz<std::uint32_t>(200, 4, 0.2, 71), 1, 20, 72);

  auto run_sweep = [&](sssp::DeltaSteppingWorkspace* ws) {
    obs::Collection window(true);
    for (VertexId s = 0; s < 16; ++s) {
      (void)sssp::delta_stepping(g, s, 0u, nullptr, nullptr, ws);
    }
    return obs::Registry::global()
        .totals()[static_cast<std::size_t>(obs::Counter::kHeavyEdgeRelaxations)];
  };
  const auto fresh_total = run_sweep(nullptr);
  sssp::DeltaSteppingWorkspace ws;
  const auto reused_total = run_sweep(&ws);
  EXPECT_EQ(fresh_total, reused_total);
  EXPECT_GT(fresh_total, 0u);
}

}  // namespace
