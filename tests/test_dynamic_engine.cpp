// Tests for the epoch-batched dynamic APSP engine (apsp/dynamic_engine.hpp)
// and its serving wire-up (serve/dynamic_service.hpp): epoch repairs vs full
// recompute, all-or-nothing epoch semantics, snapshot publication, and the
// concurrent updater-vs-reader scenario the TSan CI job drives.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "apsp/dynamic_engine.hpp"
#include "check/fuzz.hpp"
#include "check/oracle.hpp"
#include "obs/metrics.hpp"
#include "serve/dynamic_service.hpp"
#include "test_helpers.hpp"
#include "util/exec_control.hpp"

namespace {

using namespace parapsp;
using apsp::DynamicEngine;
using apsp::EdgeUpdate;

template <WeightType W>
void expect_exact(const DynamicEngine<W>& engine, const std::string& label) {
  const auto ref = apsp::repeated_dijkstra(engine.graph());
  check::Provenance prov;
  prov.backend_a = "dynamic-engine";
  prov.backend_b = "recompute";
  prov.graph_desc = label;
  const auto diff = check::diff_matrices(engine.matrix(), ref, prov);
  ASSERT_TRUE(diff) << diff.status().to_string();
  EXPECT_FALSE(diff->has_value()) << label << ": " << (**diff).to_string();
}

TEST(DynamicEngine, InsertionEpochsMatchRecompute) {
  auto g = graph::erdos_renyi_gnm<std::uint32_t>(60, 110, 3);
  g = graph::randomize_weights<std::uint32_t>(g, 1, 9, 11);
  auto engine = DynamicEngine<std::uint32_t>::create(g);
  ASSERT_TRUE(engine) << engine.status().message();

  util::Xoshiro256 rng(17);
  for (int epoch = 0; epoch < 4; ++epoch) {
    std::vector<EdgeUpdate<std::uint32_t>> batch;
    for (int i = 0; i < 6; ++i) {
      const auto u = static_cast<VertexId>(rng.bounded(60));
      const auto v = static_cast<VertexId>(rng.bounded(60));
      if (u == v) continue;
      batch.push_back(EdgeUpdate<std::uint32_t>::insert(
          u, v, static_cast<std::uint32_t>(1 + rng.bounded(9))));
    }
    const auto stats = engine->apply(batch);
    ASSERT_TRUE(stats) << stats.status().message();
    EXPECT_EQ(stats->rows_recomputed, 0u);  // insertion-only epoch
    expect_exact(*engine, "insert epoch " + std::to_string(epoch));
  }
  EXPECT_EQ(engine->epoch(), 4u);
}

TEST(DynamicEngine, DeletionEpochsMatchRecompute) {
  auto g = graph::barabasi_albert<std::uint32_t>(64, 3, 7);
  g = graph::randomize_weights<std::uint32_t>(g, 1, 9, 13);
  auto engine = DynamicEngine<std::uint32_t>::create(g);
  ASSERT_TRUE(engine) << engine.status().message();

  // Delete a slice of real edges per epoch (taken from the engine's own
  // min-weight projection so removals always exist).
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 64; ++u) {
    for (VertexId v = u + 1; v < 64; ++v) {
      if (engine->has_edge(u, v)) edges.push_back({u, v});
    }
  }
  ASSERT_GT(edges.size(), 12u);
  for (int epoch = 0; epoch < 3; ++epoch) {
    std::vector<EdgeUpdate<std::uint32_t>> batch;
    for (int i = 0; i < 4; ++i) {
      const auto [u, v] = edges[static_cast<std::size_t>(epoch * 4 + i)];
      batch.push_back(EdgeUpdate<std::uint32_t>::remove(u, v));
    }
    const auto stats = engine->apply(batch);
    ASSERT_TRUE(stats) << stats.status().message();
    EXPECT_EQ(stats->arcs_removed, 8u);  // undirected: both orientations
    expect_exact(*engine, "delete epoch " + std::to_string(epoch));
  }
}

TEST(DynamicEngine, DisconnectionProducesInfinities) {
  // A path graph cut in the middle: the two halves must become unreachable.
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kUndirected, 8);
  for (VertexId u = 0; u + 1 < 8; ++u) b.add_edge(u, u + 1, 2);
  auto engine = DynamicEngine<std::uint32_t>::create(b.build());
  ASSERT_TRUE(engine) << engine.status().message();
  EXPECT_EQ(engine->matrix().at(0, 7), 14u);

  const auto stats = engine->remove_edge(3, 4);
  ASSERT_TRUE(stats) << stats.status().message();
  EXPECT_GT(stats->rows_recomputed, 0u);
  EXPECT_TRUE(is_infinite(engine->matrix().at(0, 7)));
  EXPECT_TRUE(is_infinite(engine->matrix().at(7, 0)));
  EXPECT_EQ(engine->matrix().at(0, 3), 6u);
  expect_exact(*engine, "disconnect");
}

template <WeightType W>
void run_mixed_epochs(const char* weight_name) {
  check::FuzzGraphSpec spec{check::FuzzFamily::kWS, 56, 3, false, false, 41};
  const auto g = check::build_fuzz_graph<W>(spec);
  auto engine = DynamicEngine<W>::create(g);
  ASSERT_TRUE(engine) << engine.status().message();

  // One mixed epoch: drop two real edges, add two shortcuts, decrease one.
  std::vector<std::pair<VertexId, VertexId>> edges;
  for (VertexId u = 0; u < 56 && edges.size() < 2; ++u) {
    for (VertexId v = u + 1; v < 56 && edges.size() < 2; ++v) {
      if (engine->has_edge(u, v)) edges.push_back({u, v});
    }
  }
  ASSERT_EQ(edges.size(), 2u);
  std::vector<EdgeUpdate<W>> batch;
  batch.push_back(EdgeUpdate<W>::remove(edges[0].first, edges[0].second));
  batch.push_back(EdgeUpdate<W>::remove(edges[1].first, edges[1].second));
  batch.push_back(EdgeUpdate<W>::insert(0, 28, W{1}));
  batch.push_back(EdgeUpdate<W>::insert(5, 50, W{2}));
  const auto stats = engine->apply(batch);
  ASSERT_TRUE(stats) << stats.status().message();
  expect_exact(*engine, std::string("mixed epoch ") + weight_name);
}

TEST(DynamicEngine, MixedEpochU32) { run_mixed_epochs<std::uint32_t>("u32"); }
TEST(DynamicEngine, MixedEpochI32) { run_mixed_epochs<std::int32_t>("i32"); }
TEST(DynamicEngine, MixedEpochF32) { run_mixed_epochs<float>("f32"); }
TEST(DynamicEngine, MixedEpochF64) { run_mixed_epochs<double>("f64"); }

TEST(DynamicEngine, DirectedEpochsStayDirected) {
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kDirected, 4);
  b.add_edge(0, 1, 5);
  b.add_edge(1, 2, 5);
  auto engine = DynamicEngine<std::uint32_t>::create(b.build());
  ASSERT_TRUE(engine) << engine.status().message();
  ASSERT_TRUE(engine->insert_edge(2, 0, 1));
  EXPECT_EQ(engine->matrix().at(2, 0), 1u);
  EXPECT_EQ(engine->matrix().at(0, 2), 10u);  // forward unchanged
  EXPECT_TRUE(engine->has_edge(2, 0));
  EXPECT_FALSE(engine->has_edge(0, 2));
  expect_exact(*engine, "directed insert");

  ASSERT_TRUE(engine->remove_edge(1, 2));
  EXPECT_TRUE(is_infinite(engine->matrix().at(0, 2)));
  expect_exact(*engine, "directed remove");
}

TEST(DynamicEngine, InvalidEpochIsAtomicallyRejected) {
  const auto g = graph::grid_graph<std::uint32_t>(5, 5);
  auto engine = DynamicEngine<std::uint32_t>::create(g);
  ASSERT_TRUE(engine) << engine.status().message();
  const auto before = engine->matrix();

  // Each batch starts with a *valid, improving* update; the later invalid
  // entry must reject the whole epoch without applying it.
  using U = EdgeUpdate<std::uint32_t>;
  const std::vector<std::vector<U>> bad_batches = {
      {U::insert(0, 24, 1), U::insert(0, 99, 1)},   // out of range
      {U::insert(0, 24, 1), U::remove(0, 24)},      // net no-op is fine...
      {U::insert(0, 24, 1), U::remove(1, 3)},       // ...but this one is missing
  };
  // Batch 1 (index 1) is actually *valid*: insert-then-remove of an edge the
  // insert itself created cancels out. Apply it and expect a committed no-op
  // epoch; the others must be rejected atomically.
  {
    const auto ok = engine->apply(bad_batches[1]);
    ASSERT_TRUE(ok) << ok.status().message();
    EXPECT_EQ(ok->arcs_decreased, 0u);
    EXPECT_EQ(ok->arcs_removed, 0u);
    EXPECT_EQ(engine->matrix(), before);
  }
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    const auto r = engine->apply(bad_batches[i]);
    ASSERT_FALSE(r) << "batch " << i;
    EXPECT_EQ(r.status().code(), util::ErrorCode::kInvalidArgument);
    EXPECT_EQ(engine->matrix(), before) << "batch " << i << " tore the matrix";
    EXPECT_FALSE(engine->has_edge(0, 24));
  }
  EXPECT_EQ(engine->epoch(), 1u);  // only the valid no-op epoch committed

  // NaN / negative / infinite insert weights are rejected for floats.
  auto gd = graph::grid_graph<double>(3, 3);
  auto ed = DynamicEngine<double>::create(gd);
  ASSERT_TRUE(ed) << ed.status().message();
  EXPECT_FALSE(ed->insert_edge(0, 8, -1.0));
  EXPECT_FALSE(ed->insert_edge(0, 8, std::numeric_limits<double>::quiet_NaN()));
  EXPECT_FALSE(ed->insert_edge(0, 8, infinity<double>()));
}

TEST(DynamicEngine, CancelRollsBackTheEpoch) {
  util::ExecutionControl control;
  apsp::DynamicEngineOptions opts;
  opts.control = &control;
  const auto g = graph::grid_graph<std::uint32_t>(6, 6);
  auto engine = DynamicEngine<std::uint32_t>::create(g, opts);
  ASSERT_TRUE(engine) << engine.status().message();
  const auto before = engine->matrix();

  control.request_cancel();
  const auto r = engine->insert_edge(0, 35, 1);
  ASSERT_FALSE(r);
  EXPECT_EQ(r.status().code(), util::ErrorCode::kCancelled);
  EXPECT_EQ(engine->matrix(), before);
  EXPECT_FALSE(engine->has_edge(0, 35));
  EXPECT_EQ(engine->epoch(), 0u);

  // The same update succeeds once the control is re-armed — the rollback
  // left a consistent engine behind.
  control.reset();
  ASSERT_TRUE(engine->insert_edge(0, 35, 1));
  expect_exact(*engine, "post-rollback epoch");
}

TEST(DynamicEngine, NoopEpochSkipsEveryRow) {
  const auto g = graph::complete_graph<std::uint32_t>(24);
  auto engine = DynamicEngine<std::uint32_t>::create(g);
  ASSERT_TRUE(engine) << engine.status().message();
  const auto before = engine->matrix();

  // A heavier parallel edge min-combines into "no change": the diff finds no
  // decreased arc, the pre-filter skips all n rows without any repair work.
  const auto stats = engine->insert_edge(0, 1, 50);
  ASSERT_TRUE(stats) << stats.status().message();
  EXPECT_EQ(stats->arcs_decreased, 0u);
  EXPECT_EQ(stats->arcs_removed, 0u);
  EXPECT_GE(stats->noop_arcs, 1u);
  EXPECT_EQ(stats->rows_skipped, 24u);
  EXPECT_EQ(stats->rows_repaired, 0u);
  EXPECT_EQ(stats->total_relaxations(), 0u);
  EXPECT_EQ(engine->matrix(), before);
  EXPECT_EQ(engine->edge_weight(0, 1), std::optional<std::uint32_t>(1));
}

TEST(DynamicEngine, PrefilterSkipsUnaffectedRows) {
  // A long path: inserting a shortcut near one end leaves far-away sources'
  // rows untouched — the endpoint pre-filter must prove that and skip them.
  graph::GraphBuilder<std::uint32_t> b(graph::Directedness::kDirected, 40);
  for (VertexId u = 0; u + 1 < 40; ++u) b.add_edge(u, u + 1, 1);
  auto engine = DynamicEngine<std::uint32_t>::create(b.build());
  ASSERT_TRUE(engine) << engine.status().message();

  // Shortcut 36->39 (skips 3 hops, saves 2): only sources that can reach 36
  // benefit; rows with D[s,36]=inf... all s<=36 reach it, so most repair.
  // Use the reverse: shortcut 0->3 only helps source 0's... no: any s<=0.
  // Sources 1..39 have D[s,0]=inf (directed path), so exactly one row
  // (s=0) is affected.
  const auto stats = engine->insert_edge(0, 3, 1);
  ASSERT_TRUE(stats) << stats.status().message();
  EXPECT_EQ(stats->rows_repaired, 1u);
  EXPECT_EQ(stats->rows_skipped, 39u);
  expect_exact(*engine, "prefilter shortcut");
}

TEST(DynamicEngine, LandmarkVerificationAcceptsCorrectEpochs) {
  apsp::DynamicEngineOptions opts;
  opts.verify_landmarks = true;
  opts.landmark_count = 3;
  opts.landmark_samples = 128;
  auto g = graph::barabasi_albert<std::uint32_t>(48, 3, 21);
  g = graph::randomize_weights<std::uint32_t>(g, 1, 9, 22);
  auto engine = DynamicEngine<std::uint32_t>::create(g, opts);
  ASSERT_TRUE(engine) << engine.status().message();
  ASSERT_TRUE(engine->insert_edge(0, 47, 1));
  const auto rm = engine->remove_edge(0, 47);
  ASSERT_TRUE(rm) << rm.status().message();
  expect_exact(*engine, "verified epochs");
}

TEST(DynamicEngine, PublisherSeesEveryCommit) {
  const auto g = graph::grid_graph<std::uint32_t>(4, 4);
  auto engine = DynamicEngine<std::uint32_t>::create(g);
  ASSERT_TRUE(engine) << engine.status().message();

  std::vector<std::uint64_t> published;
  engine->set_publisher([&](const apsp::DistanceMatrix<std::uint32_t>& D,
                            const graph::Graph<std::uint32_t>& graph,
                            std::uint64_t epoch) {
    published.push_back(epoch);
    EXPECT_EQ(D.size(), 16u);
    EXPECT_EQ(graph.num_vertices(), 16u);
    return util::Status::ok();
  });
  ASSERT_TRUE(engine->insert_edge(0, 15, 1));
  ASSERT_TRUE(engine->remove_edge(0, 15));
  EXPECT_EQ(published, (std::vector<std::uint64_t>{1, 2}));

  // A failing publisher doesn't un-commit the epoch; the error surfaces in
  // the stats.
  engine->set_publisher([](const auto&, const auto&, std::uint64_t) {
    return util::Status{util::ErrorCode::kIo, "disk full"};
  });
  const auto stats = engine->insert_edge(0, 15, 1);
  ASSERT_TRUE(stats) << stats.status().message();
  EXPECT_FALSE(stats->publish_status.is_ok());
  EXPECT_EQ(engine->epoch(), 3u);
}

TEST(DynamicEngine, ObsCountersFlow) {
  if constexpr (!obs::kCompiledIn) GTEST_SKIP() << "obs compiled out";
  const auto g = graph::grid_graph<std::uint32_t>(5, 5);
  auto engine = DynamicEngine<std::uint32_t>::create(g);
  ASSERT_TRUE(engine) << engine.status().message();

  obs::Collection window(true);
  ASSERT_TRUE(engine->insert_edge(0, 24, 1));
  ASSERT_TRUE(engine->remove_edge(0, 24));
  const auto totals = obs::Registry::global().totals();
  const auto at = [&](obs::Counter c) {
    return totals[static_cast<std::size_t>(c)];
  };
  EXPECT_EQ(at(obs::Counter::kDynEpochs), 2u);
  EXPECT_EQ(at(obs::Counter::kDynRowsRepaired) + at(obs::Counter::kDynRowsSkipped),
            2u * 25u);
  EXPECT_GT(at(obs::Counter::kEdgeRelaxations), 0u);       // truncated repair
  EXPECT_GT(at(obs::Counter::kHeavyEdgeRelaxations), 0u);  // decremental re-runs
  EXPECT_GT(at(obs::Counter::kRowCellsScanned), 0u);       // pre-filter reads

  const auto& t = engine->totals();
  EXPECT_EQ(t.epochs, 2u);
  EXPECT_EQ(t.rows_repaired + t.rows_recomputed + t.rows_skipped, 2u * 25u);
}

// ---------- serving wire-up ----------

TEST(DynamicService, UpdateThenQueryServesTheNewGraph) {
  const auto g = graph::grid_graph<std::uint32_t>(6, 6);
  auto svc = serve::DynamicService<std::uint32_t>::create(g);
  ASSERT_TRUE(svc) << svc.status().message();
  EXPECT_EQ(svc->generation(), 0u);

  const auto before = svc->distance(0, 35);
  ASSERT_TRUE(before);
  EXPECT_EQ(*before, 10u);

  const auto stats = svc->insert_edge(0, 35, 1);
  ASSERT_TRUE(stats) << stats.status().message();
  ASSERT_TRUE(stats->publish_status.is_ok()) << stats->publish_status.message();
  EXPECT_EQ(svc->generation(), 1u);

  const auto after = svc->distance(0, 35);
  ASSERT_TRUE(after);
  EXPECT_EQ(*after, 1u);

  const auto rm = svc->remove_edge(0, 35);
  ASSERT_TRUE(rm) << rm.status().message();
  EXPECT_EQ(svc->generation(), 2u);
  const auto restored = svc->distance(0, 35);
  ASSERT_TRUE(restored);
  EXPECT_EQ(*restored, 10u);
}

TEST(DynamicService, InFlightSnapshotOutlivesThePublish) {
  const auto g = graph::grid_graph<std::uint32_t>(5, 5);
  auto svc = serve::DynamicService<std::uint32_t>::create(g);
  ASSERT_TRUE(svc) << svc.status().message();

  const auto old_snap = svc->snapshot();
  ASSERT_NE(old_snap, nullptr);
  const auto old_value = old_snap->row(0)[24];
  EXPECT_EQ(old_value, 8u);

  ASSERT_TRUE(svc->insert_edge(0, 24, 1));
  // The held snapshot still serves the pre-update generation, bit for bit.
  EXPECT_EQ(old_snap->row(0)[24], old_value);
  EXPECT_EQ(old_snap->generation, 0u);
  // New readers see the new generation.
  const auto new_snap = svc->snapshot();
  EXPECT_EQ(new_snap->generation, 1u);
  EXPECT_EQ(new_snap->row(0)[24], 1u);
}

TEST(DynamicService, PublishDirPersistsGenerations) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path(::testing::TempDir()) / "dynsvc_publish";
  fs::remove_all(dir);

  const auto g = graph::grid_graph<std::uint32_t>(4, 4);
  typename serve::DynamicService<std::uint32_t>::Options opts;
  opts.publish_dir = dir.string();
  auto svc = serve::DynamicService<std::uint32_t>::create(g, opts);
  ASSERT_TRUE(svc) << svc.status().message();
  const auto s1 = svc->insert_edge(0, 15, 1);
  ASSERT_TRUE(s1) << s1.status().message();
  ASSERT_TRUE(s1->publish_status.is_ok()) << s1->publish_status.message();

  // The persisted layout is exactly what ShardStore::open_dir serves: the
  // highest generation wins and carries the post-update matrix.
  auto store = serve::ShardStore<std::uint32_t>::open_dir(dir.string());
  ASSERT_TRUE(store) << store.status().message();
  const auto snap = (*store)->snapshot();
  EXPECT_EQ(snap->generation, 1u);
  EXPECT_EQ(snap->row(0)[15], 1u);
  fs::remove_all(dir);
}

TEST(DynamicService, ConcurrentUpdatersAndReaders) {
  // The TSan scenario: one writer applying epochs while reader threads
  // hammer query batches. Readers must always see *some* committed
  // generation — never a torn matrix — and every batch must succeed.
  auto g = graph::barabasi_albert<std::uint32_t>(96, 3, 33);
  g = graph::randomize_weights<std::uint32_t>(g, 1, 9, 34);
  auto svc = serve::DynamicService<std::uint32_t>::create(g);
  ASSERT_TRUE(svc) << svc.status().message();

  std::atomic<bool> stop{false};
  std::atomic<int> reader_failures{0};
  std::atomic<std::uint64_t> reader_batches{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      util::Xoshiro256 rng(100 + static_cast<std::uint64_t>(r));
      std::vector<std::pair<VertexId, VertexId>> pairs;
      std::vector<std::uint32_t> out;
      while (!stop.load(std::memory_order_acquire)) {
        pairs.clear();
        for (int i = 0; i < 16; ++i) {
          pairs.emplace_back(static_cast<VertexId>(rng.bounded(96)),
                             static_cast<VertexId>(rng.bounded(96)));
        }
        out.assign(pairs.size(), 0);
        if (!svc->distances(pairs, out).is_ok()) {
          reader_failures.fetch_add(1, std::memory_order_relaxed);
        }
        reader_batches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (int epoch = 0; epoch < 12; ++epoch) {
    const auto u = static_cast<VertexId>((epoch * 17) % 96);
    const auto v = static_cast<VertexId>((epoch * 29 + 48) % 96);
    if (u == v) continue;
    if (epoch % 2 == 0) {
      const auto st = svc->insert_edge(u, v, 1 + static_cast<std::uint32_t>(epoch % 5));
      ASSERT_TRUE(st) << st.status().message();
    } else if (svc->engine().has_edge(u, v)) {
      const auto st = svc->remove_edge(u, v);
      ASSERT_TRUE(st) << st.status().message();
    }
  }
  // Keep the overlap window open until every reader has run batches against
  // the final generation — the epochs above can finish in microseconds.
  const auto floor = reader_batches.load(std::memory_order_relaxed) + 6;
  while (reader_batches.load(std::memory_order_relaxed) < floor) {
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(reader_failures.load(), 0);
  EXPECT_GT(svc->stats().batches, 0u);

  // After the dust settles the served matrix equals a recompute.
  const auto snap = svc->snapshot();
  const auto ref = apsp::repeated_dijkstra(svc->engine().graph());
  for (VertexId s = 0; s < 96; ++s) {
    const auto row = snap->row(s);
    for (VertexId t = 0; t < 96; ++t) {
      ASSERT_EQ(row[t], ref.at(s, t)) << "(" << s << "," << t << ")";
    }
  }
}

}  // namespace
