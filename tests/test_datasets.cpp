// Tests for the Table 2 dataset registry and analog builder.
#include <gtest/gtest.h>

#include "analysis/degree_distribution.hpp"
#include "core/datasets.hpp"
#include "graph/validation.hpp"
#include "order/counting.hpp"
#include "order/ordering.hpp"

namespace {

using namespace parapsp;
using datasets::dataset_by_name;
using datasets::make_analog;
using datasets::table2;

TEST(Datasets, RosterMatchesThePaper) {
  const auto roster = table2();
  ASSERT_EQ(roster.size(), 5u);
  EXPECT_EQ(roster[0].name, "ego-Twitter");
  EXPECT_EQ(roster[3].name, "WordNet");
  EXPECT_EQ(roster[3].paper_vertices, 146005u);
  EXPECT_EQ(roster[3].paper_edges, 656999u);
  EXPECT_EQ(roster[4].dir, graph::Directedness::kDirected);
}

TEST(Datasets, LookupByName) {
  EXPECT_EQ(dataset_by_name("Flickr").paper_vertices, 105938u);
  EXPECT_THROW((void)dataset_by_name("nope"), std::invalid_argument);
}

TEST(Datasets, AverageDegree) {
  const auto wn = dataset_by_name("WordNet");
  EXPECT_NEAR(wn.average_degree(), 4.5, 0.01);
}

TEST(Datasets, AnalogPreservesTypeAndDensity) {
  for (const auto& d : table2()) {
    const auto g = make_analog(d, 1500, 99);
    EXPECT_EQ(g.is_directed(), d.dir == graph::Directedness::kDirected) << d.name;
    EXPECT_TRUE(graph::validate(g).ok()) << d.name;
    // Average degree within 2x of the paper's (generators quantize m; R-MAT
    // drops duplicate arcs).
    const double paper = d.average_degree();
    const double got = static_cast<double>(g.num_edges()) *
                       (g.is_directed() ? 1.0 : 2.0) /
                       static_cast<double>(g.num_vertices());
    EXPECT_GT(got, paper * 0.5) << d.name;
    EXPECT_LT(got, paper * 2.0) << d.name;
  }
}

TEST(Datasets, AnalogIdsCarryNoDegreeInformation) {
  // The shuffle property the basic-vs-optimized comparisons depend on: the
  // identity order must not be accidentally descending-degree.
  const auto g = make_analog(dataset_by_name("WordNet"), 4000, 7);
  const auto degrees = g.degrees();
  EXPECT_FALSE(order::is_descending_degree_order(order::identity_order(degrees.size()),
                                                 degrees));
  // Correlation check: the top-degree vertex should rarely be vertex 0.
  std::size_t low_id_hubs = 0;
  const auto sorted = order::counting_order(degrees);
  for (std::size_t i = 0; i < 10; ++i) {
    if (sorted[i] < 40) ++low_id_hubs;  // top-10 hub with an id in the lowest 1%
  }
  EXPECT_LE(low_id_hubs, 3u);
}

TEST(Datasets, AnalogIsScaleFree) {
  const auto g = make_analog(dataset_by_name("Livemocha"), 20000, 11);
  const auto dist = analysis::degree_distribution(g);
  EXPECT_GT(dist.max_degree, 20 * dist.mean_degree);
  EXPECT_GT(dist.fraction_below(static_cast<VertexId>(0.1 * dist.max_degree)), 0.9);
}

TEST(Datasets, AnalogDeterministicInSeed) {
  const auto d = dataset_by_name("ego-Twitter");
  const auto a = make_analog(d, 1024, 5);
  const auto b = make_analog(d, 1024, 5);
  EXPECT_EQ(a.targets(), b.targets());
  const auto c = make_analog(d, 1024, 6);
  EXPECT_NE(a.targets(), c.targets());
}

TEST(Datasets, AnalogRejectsDegenerateSize) {
  EXPECT_THROW((void)make_analog(dataset_by_name("Flickr"), 0, 1),
               std::invalid_argument);
  EXPECT_THROW((void)make_analog(dataset_by_name("Flickr"), 10, 1),
               std::invalid_argument);  // n <= m for BA density ~22
}

}  // namespace
